//! The `Need` and `Need₀` functions — paper Definitions 3 and 4.
//!
//! Informally, `Need(Rᵢ)` is the minimal set of base tables with which `Rᵢ`
//! must join so that the unique set of tuples in `V` associated with any
//! tuple of `Rᵢ` can be identified; if `Rⱼ ∈ Need(Rᵢ)` then `X_{Rⱼ}` is
//! required to propagate deletions (and exposed updates) of `Rᵢ` to `V`.
//!
//! Unlike the PSJ case (Quass et al.), a GPSJ view need not join with all
//! other tables when the key of `Rᵢ` is not preserved: the group-by
//! attributes always form a combined key to the view, and `Need₀` finds a
//! minimal subset of tables whose group-by attributes do.

use std::collections::BTreeSet;

use md_relation::TableId;

use crate::join_graph::{Annotation, ExtendedJoinGraph};

/// `Need(Rᵢ, G(V))` per Definition 3:
///
/// * `∅` when `Rᵢ` is annotated `k` (its key is a group-by attribute, so a
///   tuple of `Rᵢ` identifies its groups directly);
/// * `{Rⱼ} ∪ Need(Rⱼ)` when `Rᵢ` is not annotated `k` and has a parent `Rⱼ`
///   (`e(Rⱼ, Rᵢ)` exists and `i ≠ 0`);
/// * `Need₀(R₀, G(V))` otherwise (the root with un-preserved key).
pub fn need(graph: &ExtendedJoinGraph, table: TableId) -> BTreeSet<TableId> {
    if graph.annotation(table) == Annotation::Key {
        return BTreeSet::new();
    }
    match graph.parent_edge(table) {
        Some(edge) => {
            let mut set = need(graph, edge.from);
            set.insert(edge.from);
            set
        }
        None => need0(graph, graph.root()),
    }
}

/// `Need₀(Rᵢ, G(V))` per Definition 4: a depth-first traversal collecting
/// the minimal set of base tables whose group-by attributes form a combined
/// key to `V`. A child subtree is entered only when the current vertex is
/// not annotated `k` and the subtree actually contains a `k`- or
/// `g`-annotated vertex.
pub fn need0(graph: &ExtendedJoinGraph, table: TableId) -> BTreeSet<TableId> {
    let mut set = BTreeSet::new();
    if graph.annotation(table) == Annotation::Key {
        return set;
    }
    for edge in graph.children(table) {
        let subtree_grouped = graph
            .subtree(edge.to)
            .into_iter()
            .any(|t| graph.annotation(t).is_grouped());
        if subtree_grouped {
            set.insert(edge.to);
            set.extend(need0(graph, edge.to));
        }
    }
    set
}

/// Convenience: `Need(Rᵢ)` with `Rᵢ` itself removed. Definition 3's literal
/// recursion can include the starting table (a non-`k` dimension's Need set
/// contains its parent chain *and*, through the root's `Need₀`, possibly
/// itself); the elimination test in Algorithm 3.2 asks whether `Rᵢ` is in
/// the Need set of any *other* table, so self-membership is irrelevant.
pub fn need_others(graph: &ExtendedJoinGraph, table: TableId) -> BTreeSet<TableId> {
    let mut set = need(graph, table);
    set.remove(&table);
    set
}

/// Returns `true` when `table` appears in the Need set of some *other*
/// table of the view — the second elimination condition of Algorithm 3.2.
pub fn in_need_of_another(graph: &ExtendedJoinGraph, table: TableId) -> bool {
    graph
        .tables()
        .iter()
        .filter(|&&t| t != table)
        .any(|&t| need(graph, t).contains(&table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_algebra::{AggFunc, Aggregate, CmpOp, ColRef, Condition, GpsjView, SelectItem};
    use md_relation::{Catalog, DataType, Schema};

    struct Fixture {
        cat: Catalog,
        time: TableId,
        product: TableId,
        sale: TableId,
    }

    fn fixture() -> Fixture {
        let mut cat = Catalog::new();
        let time = cat
            .add_table(
                "time",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("month", DataType::Int),
                    ("year", DataType::Int),
                ]),
                0,
            )
            .unwrap();
        let product = cat
            .add_table(
                "product",
                Schema::from_pairs(&[("id", DataType::Int), ("brand", DataType::Str)]),
                0,
            )
            .unwrap();
        let sale = cat
            .add_table(
                "sale",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("timeid", DataType::Int),
                    ("productid", DataType::Int),
                    ("price", DataType::Double),
                ]),
                0,
            )
            .unwrap();
        cat.add_foreign_key(sale, 1, time).unwrap();
        cat.add_foreign_key(sale, 2, product).unwrap();
        Fixture {
            cat,
            time,
            product,
            sale,
        }
    }

    fn view_with_select(f: &Fixture, select: Vec<SelectItem>) -> GpsjView {
        GpsjView::new(
            "v",
            vec![f.sale, f.time, f.product],
            select,
            vec![
                Condition::cmp_lit(ColRef::new(f.time, 2), CmpOp::Eq, 1997i64),
                Condition::eq_cols(ColRef::new(f.sale, 1), ColRef::new(f.time, 0)),
                Condition::eq_cols(ColRef::new(f.sale, 2), ColRef::new(f.product, 0)),
            ],
        )
    }

    #[test]
    fn product_sales_need_sets() {
        // Group by time.month: time is g; sale and product unannotated.
        let f = fixture();
        let view = view_with_select(
            &f,
            vec![
                SelectItem::group_by(ColRef::new(f.time, 1), "month"),
                SelectItem::agg(Aggregate::count_star(), "n"),
            ],
        );
        let g = ExtendedJoinGraph::build(&view, &f.cat).unwrap();
        // Need(sale) = Need0(root) = {time}: time's subtree holds the only
        // grouped vertex.
        assert_eq!(need(&g, f.sale), BTreeSet::from([f.time]));
        // Need(time) = {sale} ∪ Need(sale) = {sale, time}.
        assert_eq!(need(&g, f.time), BTreeSet::from([f.sale, f.time]));
        assert_eq!(need_others(&g, f.time), BTreeSet::from([f.sale]));
        // Need(product) = {sale} ∪ Need(sale) = {sale, time}.
        assert_eq!(need(&g, f.product), BTreeSet::from([f.sale, f.time]));
        // sale is needed by both dimensions.
        assert!(in_need_of_another(&g, f.sale));
        assert!(in_need_of_another(&g, f.time));
        assert!(!in_need_of_another(&g, f.product));
    }

    #[test]
    fn key_annotated_table_needs_nothing() {
        // Group by product.id (key): product annotated k.
        let f = fixture();
        let view = view_with_select(
            &f,
            vec![
                SelectItem::group_by(ColRef::new(f.product, 0), "pid"),
                SelectItem::agg(Aggregate::count_star(), "n"),
            ],
        );
        let g = ExtendedJoinGraph::build(&view, &f.cat).unwrap();
        assert_eq!(need(&g, f.product), BTreeSet::new());
        // Need(sale) = Need0: product subtree grouped → {product}.
        assert_eq!(need(&g, f.sale), BTreeSet::from([f.product]));
        // Need(time) = {sale} ∪ Need(sale).
        assert_eq!(need(&g, f.time), BTreeSet::from([f.sale, f.product]));
    }

    #[test]
    fn root_annotated_k_has_empty_need() {
        // Group by sale.id: root annotated k → Need(sale) = ∅ and no
        // dimension group-bys required.
        let f = fixture();
        let view = view_with_select(
            &f,
            vec![
                SelectItem::group_by(ColRef::new(f.sale, 0), "saleid"),
                SelectItem::agg(Aggregate::of(AggFunc::Sum, ColRef::new(f.sale, 3)), "p"),
            ],
        );
        let g = ExtendedJoinGraph::build(&view, &f.cat).unwrap();
        assert_eq!(need(&g, f.sale), BTreeSet::new());
        // Dimensions still need the parent chain.
        assert_eq!(need(&g, f.time), BTreeSet::from([f.sale]));
    }

    #[test]
    fn need0_skips_ungrouped_subtrees() {
        // Group by time.month only; product subtree has no annotation and
        // is not entered.
        let f = fixture();
        let view = view_with_select(
            &f,
            vec![
                SelectItem::group_by(ColRef::new(f.time, 1), "month"),
                SelectItem::agg(Aggregate::count_star(), "n"),
            ],
        );
        let g = ExtendedJoinGraph::build(&view, &f.cat).unwrap();
        let n0 = need0(&g, f.sale);
        assert!(n0.contains(&f.time));
        assert!(!n0.contains(&f.product));
    }

    #[test]
    fn need0_on_snowflake_descends_to_grouped_leaf() {
        // sale -> product -> category(g): Need0(sale) = {product, category}.
        let mut cat = Catalog::new();
        let category = cat
            .add_table(
                "category",
                Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]),
                0,
            )
            .unwrap();
        let product = cat
            .add_table(
                "product",
                Schema::from_pairs(&[("id", DataType::Int), ("categoryid", DataType::Int)]),
                0,
            )
            .unwrap();
        let sale = cat
            .add_table(
                "sale",
                Schema::from_pairs(&[("id", DataType::Int), ("productid", DataType::Int)]),
                0,
            )
            .unwrap();
        cat.add_foreign_key(sale, 1, product).unwrap();
        cat.add_foreign_key(product, 1, category).unwrap();
        let view = GpsjView::new(
            "v",
            vec![sale, product, category],
            vec![
                SelectItem::group_by(ColRef::new(category, 1), "name"),
                SelectItem::agg(Aggregate::count_star(), "n"),
            ],
            vec![
                Condition::eq_cols(ColRef::new(sale, 1), ColRef::new(product, 0)),
                Condition::eq_cols(ColRef::new(product, 1), ColRef::new(category, 0)),
            ],
        );
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        assert_eq!(need(&g, sale), BTreeSet::from([product, category]));
        // category: {product} ∪ Need(product) = {product, sale} ∪ Need(sale)…
        let nc = need(&g, category);
        assert!(nc.contains(&product));
        assert!(nc.contains(&sale));
    }

    #[test]
    fn need0_stops_below_key_annotated_vertex() {
        // sale -> product(k) -> category(g): grouping on product.id makes
        // category's group-by redundant for the combined key, so Need0(sale)
        // = {product} only.
        let mut cat = Catalog::new();
        let category = cat
            .add_table(
                "category",
                Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]),
                0,
            )
            .unwrap();
        let product = cat
            .add_table(
                "product",
                Schema::from_pairs(&[("id", DataType::Int), ("categoryid", DataType::Int)]),
                0,
            )
            .unwrap();
        let sale = cat
            .add_table(
                "sale",
                Schema::from_pairs(&[("id", DataType::Int), ("productid", DataType::Int)]),
                0,
            )
            .unwrap();
        cat.add_foreign_key(sale, 1, product).unwrap();
        cat.add_foreign_key(product, 1, category).unwrap();
        let view = GpsjView::new(
            "v",
            vec![sale, product, category],
            vec![
                SelectItem::group_by(ColRef::new(product, 0), "pid"),
                SelectItem::group_by(ColRef::new(category, 1), "name"),
                SelectItem::agg(Aggregate::count_star(), "n"),
            ],
            vec![
                Condition::eq_cols(ColRef::new(sale, 1), ColRef::new(product, 0)),
                Condition::eq_cols(ColRef::new(product, 1), ColRef::new(category, 0)),
            ],
        );
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        assert_eq!(need0(&g, sale), BTreeSet::from([product]));
    }
}

//! Reconstruction plans: how to compute the summary view `V` from its
//! auxiliary views `X` alone — paper Sections 1.1 ("the `product_sales`
//! view can now be reconstructed from these three auxiliary views without
//! ever accessing the original fact and dimension tables") and 3.2
//! ("Maintenance Issues under Duplicate Compression").
//!
//! The reconstruction rules in the presence of compressed duplicates:
//!
//! * `COUNT(*)` in `V` → `SUM(cnt₀)` (sum of the root view's counts);
//! * a CSMAS over an attribute that is itself maintained by a SUM in the
//!   root auxiliary view → sum the pre-aggregated column;
//! * a CSMAS over a *raw* attribute (kept because it also feeds a
//!   non-CSMAS, or lives on a non-root table) → `f(a · cnt₀)`;
//! * `MIN`/`MAX` and `DISTINCT` aggregates ignore duplicates and are
//!   recomputed directly from the raw columns.

use md_algebra::AggFunc;
use md_relation::TableId;

/// A join between two auxiliary views, mirroring one edge of the extended
/// join graph: `from_aux[from_aux_col] = to_aux[to_aux_col]` where the
/// right-hand column holds the key of `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuxJoin {
    /// Referencing auxiliary view's base table.
    pub from: TableId,
    /// Column index (in the auxiliary view) of the foreign key on `from`.
    pub from_aux_col: usize,
    /// Referenced auxiliary view's base table.
    pub to: TableId,
    /// Column index (in the auxiliary view) of the key on `to`.
    pub to_aux_col: usize,
}

/// Where a summed quantity comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumSource {
    /// A pre-aggregated `SUM(a)` column of the root auxiliary view — add
    /// the stored partial sums directly (distributivity).
    PreSummed {
        /// The auxiliary view's base table (always the root).
        table: TableId,
        /// Column index within that auxiliary view.
        aux_col: usize,
    },
    /// A raw attribute column — each joined tuple contributes
    /// `a · cnt₀` (the paper's multiplication rule).
    Raw {
        /// The auxiliary view's base table.
        table: TableId,
        /// Column index within that auxiliary view.
        aux_col: usize,
    },
}

/// One output item of the reconstruction, parallel to the view's select
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconItem {
    /// A group-by attribute read from an auxiliary view.
    Group {
        /// The auxiliary view's base table.
        table: TableId,
        /// Column index within that auxiliary view.
        aux_col: usize,
    },
    /// `COUNT(*)` (and `COUNT(a)` after the Table 2 rewrite): `Σ cnt₀`.
    Count,
    /// `SUM(a)`.
    Sum(SumSource),
    /// `AVG(a)`: the sum from `source` divided by `Σ cnt₀`.
    Avg(SumSource),
    /// `MIN(a)`/`MAX(a)`: duplicate-insensitive, read from a raw column.
    MinMax {
        /// Which extremum.
        func: AggFunc,
        /// The auxiliary view's base table.
        table: TableId,
        /// Raw column index within that auxiliary view.
        aux_col: usize,
    },
    /// `COUNT/SUM/AVG(DISTINCT a)`: duplicate-insensitive, read from a raw
    /// column.
    Distinct {
        /// The underlying aggregate function.
        func: AggFunc,
        /// The auxiliary view's base table.
        table: TableId,
        /// Raw column index within that auxiliary view.
        aux_col: usize,
    },
}

/// A full reconstruction plan for a view whose root auxiliary view is
/// materialized.
#[derive(Debug, Clone)]
pub struct ReconstructionPlan {
    /// The root table (iteration starts from its auxiliary view).
    pub root: TableId,
    /// Output items, parallel to the view's select list.
    pub items: Vec<ReconItem>,
    /// Joins from each auxiliary view to the auxiliary views of its
    /// children in the extended join graph.
    pub joins: Vec<AuxJoin>,
    /// Column index of `cnt₀` in the root auxiliary view; `None` when the
    /// root degenerated to a PSJ view (every stored tuple then stands for
    /// exactly one base tuple).
    pub root_count_col: Option<usize>,
}

impl ReconstructionPlan {
    /// The joins leaving `table`'s auxiliary view.
    pub fn joins_from(&self, table: TableId) -> impl Iterator<Item = &AuxJoin> {
        self.joins.iter().filter(move |j| j.from == table)
    }

    /// Returns `true` when any output item requires per-group recomputation
    /// from the auxiliary views on deletions (non-CSMAS present).
    pub fn has_non_csmas(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, ReconItem::MinMax { .. } | ReconItem::Distinct { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_from_filters_by_source() {
        let plan = ReconstructionPlan {
            root: TableId(0),
            items: vec![ReconItem::Count],
            joins: vec![
                AuxJoin {
                    from: TableId(0),
                    from_aux_col: 0,
                    to: TableId(1),
                    to_aux_col: 0,
                },
                AuxJoin {
                    from: TableId(0),
                    from_aux_col: 1,
                    to: TableId(2),
                    to_aux_col: 0,
                },
                AuxJoin {
                    from: TableId(1),
                    from_aux_col: 1,
                    to: TableId(3),
                    to_aux_col: 0,
                },
            ],
            root_count_col: Some(2),
        };
        assert_eq!(plan.joins_from(TableId(0)).count(), 2);
        assert_eq!(plan.joins_from(TableId(1)).count(), 1);
        assert!(!plan.has_non_csmas());
    }

    #[test]
    fn non_csmas_detection() {
        let plan = ReconstructionPlan {
            root: TableId(0),
            items: vec![
                ReconItem::Count,
                ReconItem::MinMax {
                    func: AggFunc::Max,
                    table: TableId(0),
                    aux_col: 1,
                },
            ],
            joins: vec![],
            root_count_col: Some(2),
        };
        assert!(plan.has_non_csmas());
    }
}

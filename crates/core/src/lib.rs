//! # `md-core` — deriving minimal auxiliary views for GPSJ views
//!
//! The heart of the *mindetail* reproduction of *Akinde, Jensen & Böhlen,
//! "Minimizing Detail Data in Data Warehouses" (EDBT 1998)*: given a
//! materialized GPSJ view `V`, derive the **unique minimal set of auxiliary
//! views `X`** such that `{V} ∪ X` is self-maintainable under insertions,
//! deletions and updates to the base tables — without ever accessing the
//! (possibly unreachable) data sources.
//!
//! The pipeline, mirroring the paper:
//!
//! 1. [`aggregates`] — classify the view's aggregates (Tables 1–2):
//!    `COUNT`/`SUM`/`AVG` form completely self-maintainable aggregate sets
//!    (CSMAS) after rewriting; `MIN`/`MAX` and `DISTINCT` aggregates do not.
//! 2. [`join_graph`] — build the extended join graph `G(V)` (Definition 2)
//!    with `g`/`k` annotations, and the *depends* relation (key join +
//!    referential integrity + no [`exposure`]d updates).
//! 3. [`mod@need`] — the `Need`/`Need₀` functions (Definitions 3–4).
//! 4. [`compression`] — local reduction and smart duplicate compression
//!    (Algorithm 3.1).
//! 5. [`mod@derive`] — Algorithm 3.2, assembling [`aux::AuxViewDef`]s,
//!    eliminating omissible auxiliary views, and emitting the
//!    [`recon::ReconstructionPlan`] used to rebuild or repair `V` from `X`.
//!
//! [`size_model`] reproduces the paper's Section 1.1 storage arithmetic
//! (245 GBytes → 167 MBytes).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregates;
pub mod aux;
pub mod compression;
pub mod derive;
pub mod error;
pub mod exposure;
pub mod join_graph;
pub mod need;
pub mod recon;
pub mod size_model;

pub use aggregates::{
    blocking_non_csmas_columns, classify, is_sma, regime_of, rewrite, smas_companions, AggClass,
    ChangeKind, ChangeRegime, Rewrite,
};
pub use aux::{AuxColKind, AuxColumn, AuxViewDef};
pub use compression::{compress, CompressionSpec};
pub use derive::{derive, AuxEntry, DerivedPlan};
pub use error::{CoreError, Result};
pub use exposure::{exposed_columns, has_exposed_updates};
pub use join_graph::{
    direct_dependencies, edge_is_dependency, transitively_depends_on_all, Annotation,
    ExtendedJoinGraph, JoinEdge,
};
pub use need::{in_need_of_another, need, need0, need_others};
pub use recon::{AuxJoin, ReconItem, ReconstructionPlan, SumSource};
pub use size_model::{human_bytes, human_nanos, RetailModel};

//! Extended join graphs — paper Definition 2 and Figure 2.
//!
//! Given a GPSJ view `V`, the extended join graph `G(V)` is a directed graph
//! over the referenced base tables with an edge `e(Rᵢ, Rⱼ)` for every join
//! condition `Rᵢ.b = Rⱼ.a` with `a` the key of `Rⱼ`. A vertex is annotated
//! `g` when the table contributes group-by attributes, and `k` when one of
//! those attributes is the table's key.
//!
//! The paper assumes the graph is a **tree** (at most one edge into any
//! vertex, no cycles, no self-joins), which covers star and snowflake
//! schemas; [`ExtendedJoinGraph::build`] validates this. The table at the
//! tree's root is the *root table* `R₀` — the fact table in a star schema.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use md_algebra::GpsjView;
use md_relation::{Catalog, TableId};

use crate::error::{CoreError, Result};
use crate::exposure::has_exposed_updates;

/// A directed edge `e(from, to)` induced by the join condition
/// `from.fk_col = to.key_col` (with `key_col` the key of `to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// The referencing (foreign-key side) table.
    pub from: TableId,
    /// The foreign-key column on `from`.
    pub fk_col: usize,
    /// The referenced (key side) table.
    pub to: TableId,
    /// The key column on `to`.
    pub key_col: usize,
}

/// Vertex annotation per Definition 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Annotation {
    /// No group-by attribute comes from this table.
    None,
    /// The table contributes group-by attributes (`g`).
    Group,
    /// One of the contributed group-by attributes is the table's key (`k`).
    Key,
}

impl Annotation {
    /// Returns `true` for `g` or `k`.
    pub fn is_grouped(self) -> bool {
        !matches!(self, Annotation::None)
    }
}

/// The extended join graph of a GPSJ view, validated to be a tree.
#[derive(Debug, Clone)]
pub struct ExtendedJoinGraph {
    tables: Vec<TableId>,
    edges: Vec<JoinEdge>,
    annotations: Vec<Annotation>,
    root: TableId,
}

impl ExtendedJoinGraph {
    /// Builds and validates the extended join graph of `view`.
    pub fn build(view: &GpsjView, catalog: &Catalog) -> Result<Self> {
        view.validate(catalog)?;
        let tables = view.tables.clone();
        let not_a_tree = |detail: String| CoreError::NotATree {
            view: view.name.clone(),
            detail,
        };

        // Edges from join conditions, oriented fk -> key.
        let mut edges: Vec<JoinEdge> = Vec::new();
        for (fk, key) in view.join_conditions(catalog)? {
            let key_col = catalog.def(key.table)?.key_col;
            debug_assert_eq!(key_col, key.column, "join_pair returns the key side");
            let edge = JoinEdge {
                from: fk.table,
                fk_col: fk.column,
                to: key.table,
                key_col: key.column,
            };
            if !edges.contains(&edge) {
                edges.push(edge);
            }
        }

        // Tree validation: at most one incoming edge per vertex.
        for &t in &tables {
            let incoming = edges.iter().filter(|e| e.to == t).count();
            if incoming > 1 {
                let name = catalog.def(t)?.name.clone();
                return Err(not_a_tree(format!(
                    "table '{name}' has {incoming} incoming join edges"
                )));
            }
        }

        // Exactly one root (vertex with no incoming edge).
        let roots: Vec<TableId> = tables
            .iter()
            .copied()
            .filter(|t| !edges.iter().any(|e| e.to == *t))
            .collect();
        let root = match roots.as_slice() {
            [r] => *r,
            [] => {
                return Err(not_a_tree(
                    "every table has an incoming edge (the join graph contains a cycle)".into(),
                ))
            }
            many => {
                let names: Vec<String> = many
                    .iter()
                    .map(|t| catalog.def(*t).map(|d| d.name.clone()).unwrap_or_default())
                    .collect();
                return Err(not_a_tree(format!(
                    "the join graph is disconnected; candidate roots: {}",
                    names.join(", ")
                )));
            }
        };

        // Reachability: the root must reach every table (rules out cycles
        // hanging off the tree).
        let mut reached = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if reached.insert(t) {
                for e in edges.iter().filter(|e| e.from == t) {
                    stack.push(e.to);
                }
            }
        }
        if reached.len() != tables.len() {
            return Err(not_a_tree(
                "not all tables are reachable from the root".into(),
            ));
        }

        // Annotations.
        let annotations = tables
            .iter()
            .map(|&t| {
                let group_cols = view.group_by_columns_of(t);
                let key_col = catalog.def(t)?.key_col;
                Ok(if group_cols.contains(&key_col) {
                    Annotation::Key
                } else if !group_cols.is_empty() {
                    Annotation::Group
                } else {
                    Annotation::None
                })
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(ExtendedJoinGraph {
            tables,
            edges,
            annotations,
            root,
        })
    }

    /// The root table `R₀` (the fact table in a star schema).
    pub fn root(&self) -> TableId {
        self.root
    }

    /// All tables, in view order.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// All edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// The annotation of `table`.
    pub fn annotation(&self, table: TableId) -> Annotation {
        self.tables
            .iter()
            .position(|&t| t == table)
            .map(|i| self.annotations[i])
            .unwrap_or(Annotation::None)
    }

    /// Outgoing edges of `table` (toward its children).
    pub fn children(&self, table: TableId) -> impl Iterator<Item = &JoinEdge> {
        self.edges.iter().filter(move |e| e.from == table)
    }

    /// The edge into `table`, if it is not the root.
    pub fn parent_edge(&self, table: TableId) -> Option<&JoinEdge> {
        self.edges.iter().find(|e| e.to == table)
    }

    /// All tables in the subtree rooted at `table` (inclusive), in DFS
    /// preorder.
    pub fn subtree(&self, table: TableId) -> Vec<TableId> {
        let mut out = Vec::new();
        let mut stack = vec![table];
        while let Some(t) = stack.pop() {
            out.push(t);
            for e in self.children(t) {
                stack.push(e.to);
            }
        }
        out
    }

    /// Renders the graph in the style of the paper's Figure 2, e.g.
    /// `sale -> time(g), sale -> product`.
    pub fn display(&self, catalog: &Catalog) -> String {
        let name = |t: TableId| -> String {
            catalog
                .def(t)
                .map(|d| d.name.clone())
                .unwrap_or_else(|_| t.to_string())
        };
        let annot = |t: TableId| -> &'static str {
            match self.annotation(t) {
                Annotation::None => "",
                Annotation::Group => "(g)",
                Annotation::Key => "(k)",
            }
        };
        if self.edges.is_empty() {
            return format!("{}{}", name(self.root), annot(self.root));
        }
        let mut parts: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                format!(
                    "{}{} -> {}{}",
                    name(e.from),
                    annot(e.from),
                    name(e.to),
                    annot(e.to)
                )
            })
            .collect();
        parts.sort();
        parts.join(", ")
    }

    /// Renders the graph in Graphviz DOT format (for the report binaries).
    pub fn to_dot(&self, catalog: &Catalog) -> String {
        let mut s = String::from("digraph joingraph {\n");
        for &t in &self.tables {
            let label = catalog
                .def(t)
                .map(|d| d.name.clone())
                .unwrap_or_else(|_| t.to_string());
            let suffix = match self.annotation(t) {
                Annotation::None => String::new(),
                Annotation::Group => " [g]".into(),
                Annotation::Key => " [k]".into(),
            };
            let _ = writeln!(s, "  {t} [label=\"{label}{suffix}\"];");
        }
        for e in &self.edges {
            let _ = writeln!(s, "  {} -> {};", e.from, e.to);
        }
        s.push('}');
        s
    }
}

/// Returns `true` when `edge.from` *depends on* `edge.to` (Section 2.2):
/// the join is on the key of `edge.to` (guaranteed by construction),
/// referential integrity is declared from `from.fk_col` to `to`, and
/// `edge.to` has no exposed updates with respect to `view`.
pub fn edge_is_dependency(view: &GpsjView, catalog: &Catalog, edge: &JoinEdge) -> Result<bool> {
    let ri_declared = catalog
        .foreign_key(edge.from, edge.fk_col, edge.to)
        .is_some();
    Ok(ri_declared && !has_exposed_updates(view, catalog, edge.to)?)
}

/// The tables that `table` directly depends on (targets of its dependency
/// edges) — the semijoin-reduction partners of its auxiliary view.
pub fn direct_dependencies(
    view: &GpsjView,
    catalog: &Catalog,
    graph: &ExtendedJoinGraph,
    table: TableId,
) -> Result<Vec<TableId>> {
    let mut deps = Vec::new();
    for e in graph.children(table) {
        if edge_is_dependency(view, catalog, e)? {
            deps.push(e.to);
        }
    }
    Ok(deps)
}

/// Returns `true` when `table` *transitively depends on all other* base
/// tables of the view — the first elimination condition of Algorithm 3.2.
pub fn transitively_depends_on_all(
    view: &GpsjView,
    catalog: &Catalog,
    graph: &ExtendedJoinGraph,
    table: TableId,
) -> Result<bool> {
    let mut reached = BTreeSet::new();
    let mut stack = vec![table];
    while let Some(t) = stack.pop() {
        if reached.insert(t) {
            for dep in direct_dependencies(view, catalog, graph, t)? {
                stack.push(dep);
            }
        }
    }
    Ok(reached.len() == graph.tables().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_algebra::{AggFunc, Aggregate, CmpOp, ColRef, Condition, SelectItem};
    use md_relation::{DataType, Schema};

    /// The paper's running example: sale -> time(g), sale -> product.
    fn paper_setup() -> (Catalog, TableId, TableId, TableId, GpsjView) {
        let mut cat = Catalog::new();
        let time = cat
            .add_table(
                "time",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("month", DataType::Int),
                    ("year", DataType::Int),
                ]),
                0,
            )
            .unwrap();
        let product = cat
            .add_table(
                "product",
                Schema::from_pairs(&[("id", DataType::Int), ("brand", DataType::Str)]),
                0,
            )
            .unwrap();
        let sale = cat
            .add_table(
                "sale",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("timeid", DataType::Int),
                    ("productid", DataType::Int),
                    ("price", DataType::Double),
                ]),
                0,
            )
            .unwrap();
        cat.add_foreign_key(sale, 1, time).unwrap();
        cat.add_foreign_key(sale, 2, product).unwrap();
        let view = GpsjView::new(
            "product_sales",
            vec![sale, time, product],
            vec![
                SelectItem::group_by(ColRef::new(time, 1), "month"),
                SelectItem::agg(
                    Aggregate::of(AggFunc::Sum, ColRef::new(sale, 3)),
                    "TotalPrice",
                ),
                SelectItem::agg(Aggregate::count_star(), "TotalCount"),
                SelectItem::agg(
                    Aggregate::distinct_of(AggFunc::Count, ColRef::new(product, 1)),
                    "DifferentBrands",
                ),
            ],
            vec![
                Condition::cmp_lit(ColRef::new(time, 2), CmpOp::Eq, 1997i64),
                Condition::eq_cols(ColRef::new(sale, 1), ColRef::new(time, 0)),
                Condition::eq_cols(ColRef::new(sale, 2), ColRef::new(product, 0)),
            ],
        );
        (cat, time, product, sale, view)
    }

    #[test]
    fn figure2_graph_structure() {
        let (cat, time, product, sale, view) = paper_setup();
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        assert_eq!(g.root(), sale);
        assert_eq!(g.edges().len(), 2);
        assert!(g.parent_edge(sale).is_none());
        assert_eq!(g.parent_edge(time).unwrap().from, sale);
        assert_eq!(g.parent_edge(product).unwrap().from, sale);
        // Figure 2 annotations: Sale unannotated, Time g, Product unannotated.
        assert_eq!(g.annotation(sale), Annotation::None);
        assert_eq!(g.annotation(time), Annotation::Group);
        assert_eq!(g.annotation(product), Annotation::None);
        assert_eq!(g.display(&cat), "sale -> product, sale -> time(g)");
    }

    #[test]
    fn key_annotation_when_key_grouped() {
        let (cat, time, product, sale, mut view) = paper_setup();
        let _ = product;
        // Group by time.id instead of time.month.
        view.select[0] = SelectItem::group_by(ColRef::new(time, 0), "timeid");
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        assert_eq!(g.annotation(time), Annotation::Key);
        assert_eq!(g.annotation(sale), Annotation::None);
        assert!(g.annotation(time).is_grouped());
    }

    #[test]
    fn subtree_enumeration() {
        let (cat, time, product, sale, view) = paper_setup();
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        let mut sub = g.subtree(sale);
        sub.sort();
        let mut all = vec![sale, time, product];
        all.sort();
        assert_eq!(sub, all);
        assert_eq!(g.subtree(time), vec![time]);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let (cat, time, product, sale, mut view) = paper_setup();
        let _ = (time, sale);
        // Remove the product join: product becomes a second root.
        view.conditions
            .retain(|c| !c.columns().iter().any(|col| col.table == product) || c.is_local());
        let e = ExtendedJoinGraph::build(&view, &cat).unwrap_err();
        assert!(matches!(e, CoreError::NotATree { .. }));
    }

    #[test]
    fn double_parent_rejected() {
        // a -> c, b -> c: two incoming edges into c.
        let mut cat = Catalog::new();
        let c = cat
            .add_table("c", Schema::from_pairs(&[("id", DataType::Int)]), 0)
            .unwrap();
        let a = cat
            .add_table(
                "a",
                Schema::from_pairs(&[("id", DataType::Int), ("cid", DataType::Int)]),
                0,
            )
            .unwrap();
        let b = cat
            .add_table(
                "b",
                Schema::from_pairs(&[("id", DataType::Int), ("cid", DataType::Int)]),
                0,
            )
            .unwrap();
        let view = GpsjView::new(
            "v",
            vec![a, b, c],
            vec![SelectItem::agg(Aggregate::count_star(), "n")],
            vec![
                Condition::eq_cols(ColRef::new(a, 1), ColRef::new(c, 0)),
                Condition::eq_cols(ColRef::new(b, 1), ColRef::new(c, 0)),
            ],
        );
        let e = ExtendedJoinGraph::build(&view, &cat).unwrap_err();
        assert!(matches!(e, CoreError::NotATree { .. }));
    }

    #[test]
    fn single_table_graph() {
        let mut cat = Catalog::new();
        let t = cat
            .add_table(
                "t",
                Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Int)]),
                0,
            )
            .unwrap();
        let view = GpsjView::new(
            "v",
            vec![t],
            vec![
                SelectItem::group_by(ColRef::new(t, 1), "x"),
                SelectItem::agg(Aggregate::count_star(), "n"),
            ],
            vec![],
        );
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        assert_eq!(g.root(), t);
        assert!(g.edges().is_empty());
        assert_eq!(g.display(&cat), "t(g)");
    }

    #[test]
    fn dependencies_require_ri_and_no_exposure() {
        let (mut cat, time, product, sale, view) = paper_setup();
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        // With the default (pessimistic) update contract, time.year is
        // exposed, so sale does not depend on time; product has no condition
        // columns other than its key, which is never updatable → depends.
        let deps = direct_dependencies(&view, &cat, &g, sale).unwrap();
        assert_eq!(deps, vec![product]);
        assert!(!transitively_depends_on_all(&view, &cat, &g, sale).unwrap());

        // Declaring time append-only removes the exposure.
        cat.set_append_only(time).unwrap();
        let deps = direct_dependencies(&view, &cat, &g, sale).unwrap();
        assert_eq!(deps.len(), 2);
        assert!(transitively_depends_on_all(&view, &cat, &g, sale).unwrap());
        // Dimensions never transitively depend on all (no outgoing edges).
        assert!(!transitively_depends_on_all(&view, &cat, &g, time).unwrap());
    }

    #[test]
    fn missing_ri_breaks_dependency() {
        let (mut cat, time, product, sale, view) = paper_setup();
        cat.set_append_only(time).unwrap();
        cat.set_append_only(product).unwrap();
        // Build an identical catalog but without the sale->product FK.
        let mut cat2 = Catalog::new();
        for t in [time, product, sale] {
            let d = cat.def(t).unwrap();
            cat2.add_table(d.name.clone(), d.schema.clone(), d.key_col)
                .unwrap();
        }
        cat2.add_foreign_key(sale, 1, time).unwrap();
        cat2.set_append_only(time).unwrap();
        cat2.set_append_only(product).unwrap();
        let g = ExtendedJoinGraph::build(&view, &cat2).unwrap();
        let deps = direct_dependencies(&view, &cat2, &g, sale).unwrap();
        assert_eq!(deps, vec![time]);
    }

    #[test]
    fn dot_output_contains_vertices_and_edges() {
        let (cat, _, _, _, view) = paper_setup();
        let g = ExtendedJoinGraph::build(&view, &cat).unwrap();
        let dot = g.to_dot(&cat);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("sale"));
        assert!(dot.contains("->"));
        assert!(dot.contains("[g]"));
    }
}

//! Analytic storage model — paper Section 1.1.
//!
//! The paper quantifies the savings of smart duplicate compression on
//! "numbers based on real-life case studies of data warehouses"
//! (Kimball, The Data Warehouse Toolkit):
//!
//! ```text
//! Time:    2 years × 365 days                    = 730 days
//! Store:   300 stores, reporting sales each day
//! Product: 30,000 products per store, 3,000 sell per day per store
//! Transactions per product: 20
//! Fact tuples:  730 × 300 × 3,000 × 20           = 13,140,000,000
//! Fact size:    13.14e9 × 5 fields × 4 bytes     = 245 GBytes
//! saleDTL tuples (worst case): 365 × 30,000      = 10,950,000
//! saleDTL size: 10.95e6 × 4 fields × 4 bytes     = 167 MBytes
//! ```
//!
//! This module reproduces that arithmetic exactly (experiment E1) and
//! generalizes it into a parameterized model the benches sweep over (E8).

use md_relation::Value;

/// Parameters of the paper's retail scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetailModel {
    /// Days covered by the fact table (the paper: 2 years = 730).
    pub days: u64,
    /// Number of stores (the paper: 300).
    pub stores: u64,
    /// Distinct products sold per day *per store* (the paper: 3,000).
    pub products_sold_per_day_per_store: u64,
    /// Transactions per (day, store, product) triple (the paper: 20).
    pub transactions_per_product: u64,
    /// Distinct products across the chain (the paper: 30,000).
    pub distinct_products: u64,
    /// Fraction of days passing the view's time selection (the paper's
    /// `year = 1997` over two years: one half). Expressed as
    /// (numerator, denominator) to keep the arithmetic exact.
    pub selected_day_fraction: (u64, u64),
    /// Fields in the fact table (the paper: 5).
    pub fact_fields: u64,
    /// Fields in the compressed auxiliary view (the paper: 4 —
    /// timeid, productid, SUM(price), COUNT(*)).
    pub aux_fields: u64,
}

impl RetailModel {
    /// The exact parameter set from Section 1.1.
    pub fn paper() -> Self {
        RetailModel {
            days: 730,
            stores: 300,
            products_sold_per_day_per_store: 3_000,
            transactions_per_product: 20,
            distinct_products: 30_000,
            selected_day_fraction: (1, 2),
            fact_fields: 5,
            aux_fields: 4,
        }
    }

    /// Number of tuples in the fact table:
    /// `days × stores × products_sold/day/store × transactions/product`.
    pub fn fact_rows(&self) -> u64 {
        self.days
            * self.stores
            * self.products_sold_per_day_per_store
            * self.transactions_per_product
    }

    /// Fact table bytes in the paper's model.
    pub fn fact_bytes(&self) -> u64 {
        self.fact_rows() * self.fact_fields * Value::PAPER_FIELD_BYTES
    }

    /// Days passing the time selection.
    pub fn selected_days(&self) -> u64 {
        self.days * self.selected_day_fraction.0 / self.selected_day_fraction.1
    }

    /// Worst-case number of tuples in the compressed auxiliary view of the
    /// fact table (grouped on `(timeid, productid)`): every distinct
    /// product sells somewhere in the chain every selected day.
    pub fn aux_rows_worst_case(&self) -> u64 {
        self.selected_days() * self.distinct_products
    }

    /// Worst-case auxiliary view bytes in the paper's model.
    pub fn aux_bytes_worst_case(&self) -> u64 {
        self.aux_rows_worst_case() * self.aux_fields * Value::PAPER_FIELD_BYTES
    }

    /// The compression ratio `fact bytes / aux bytes` (worst case).
    pub fn compression_ratio(&self) -> f64 {
        self.fact_bytes() as f64 / self.aux_bytes_worst_case() as f64
    }

    /// Scales the cardinality parameters by `1/f` for measured runs that
    /// must fit in memory, keeping the duplication factor intact.
    pub fn scaled_down(&self, f: u64) -> Self {
        RetailModel {
            days: (self.days / f).max(2),
            stores: (self.stores / f).max(1),
            products_sold_per_day_per_store: (self.products_sold_per_day_per_store / f).max(1),
            distinct_products: (self.distinct_products / f).max(1),
            ..*self
        }
    }
}

/// Formats a byte count the way the paper does: binary units, no decimals
/// beyond what the paper prints ("245 GBytes", "167 MBytes").
pub fn human_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.0} GBytes", b / GB)
    } else if b >= MB {
        format!("{:.0} MBytes", b / MB)
    } else if b >= KB {
        format!("{:.0} KBytes", b / KB)
    } else {
        format!("{bytes} bytes")
    }
}

/// Nanoseconds in a display unit (ns/µs/ms/s), for the shell's timing
/// output — the duration counterpart of [`human_bytes`].
pub fn human_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fact_table_numbers() {
        let m = RetailModel::paper();
        // "Number of tuples in fact table: … = 13,140,000,000"
        assert_eq!(m.fact_rows(), 13_140_000_000);
        // "Fact table size: 13,140,000,000 × 5 fields × 4 bytes = 245 GBytes"
        assert_eq!(m.fact_bytes(), 262_800_000_000);
        assert_eq!(human_bytes(m.fact_bytes()), "245 GBytes");
    }

    #[test]
    fn paper_aux_view_numbers() {
        let m = RetailModel::paper();
        // "Number of tuples in the auxiliary view: … = 10,950,000"
        assert_eq!(m.aux_rows_worst_case(), 10_950_000);
        // "Auxiliary view size: 10,950,000 × 4 fields × 4 bytes = 167 MBytes"
        assert_eq!(m.aux_bytes_worst_case(), 175_200_000);
        assert_eq!(human_bytes(m.aux_bytes_worst_case()), "167 MBytes");
    }

    #[test]
    fn compression_ratio_is_three_orders_of_magnitude() {
        let m = RetailModel::paper();
        // 245 GB / 167 MB = 1500.
        assert!((m.compression_ratio() - 1500.0).abs() < 1.0);
    }

    #[test]
    fn scaled_model_preserves_duplication_factor() {
        let m = RetailModel::paper().scaled_down(100);
        assert_eq!(m.transactions_per_product, 20);
        assert!(m.fact_rows() > 0);
        assert!(m.fact_rows() < RetailModel::paper().fact_rows());
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 bytes");
        assert_eq!(human_bytes(2048), "2 KBytes");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3 MBytes");
        assert_eq!(human_nanos(512), "512ns");
        assert_eq!(human_nanos(2_500), "2.5µs");
        assert_eq!(human_nanos(2_500_000), "2.500ms");
        assert_eq!(human_nanos(2_500_000_000), "2.500s");
    }
}

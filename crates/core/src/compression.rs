//! Local reduction + smart duplicate compression — paper Sections 2.2
//! and 3.2 (Algorithm 3.1).
//!
//! Local reduction keeps, for table `Rᵢ`, only the attributes *preserved*
//! in the view (after the Table 2 aggregate rewrite) or involved in join
//! conditions, and pushes `Rᵢ`'s local selection conditions into the
//! auxiliary view.
//!
//! Smart duplicate compression then exploits the duplicate-eliminating
//! generalized projection:
//!
//! 1. include a `COUNT(*)` unless superfluous (the key of `Rᵢ` is retained,
//!    so every group holds exactly one tuple), and
//! 2. every retained attribute used in neither non-CSMASs, join conditions
//!    nor group-by clauses is replaced by the appropriate `SUM` per Table 2.

use std::collections::BTreeSet;

use md_algebra::{GpsjView, SelectItem};
use md_relation::{Catalog, TableId};

use crate::aggregates::{self, Rewrite};
use crate::error::Result;

/// Which attributes of a table must be retained, and in what role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressionSpec {
    /// Attributes stored raw, forming the auxiliary view's group-by key:
    /// attributes in join conditions, in the view's group-by clause, or in
    /// non-CSMAS aggregates. Sorted by source column index.
    pub group_cols: Vec<usize>,
    /// Attributes folded into per-group `SUM`s: used only in CSMAS
    /// aggregates. Sorted by source column index.
    pub sum_cols: Vec<usize>,
    /// Whether a `COUNT(*)` column is included (step 1 of Algorithm 3.1).
    pub include_count: bool,
}

/// The attribute roles of `table` with respect to `view`, after the Table 2
/// rewrite. Computes local reduction (which attributes survive at all) and
/// smart duplicate compression (raw vs. summed vs. counted) in one pass.
pub fn compress(view: &GpsjView, catalog: &Catalog, table: TableId) -> Result<CompressionSpec> {
    // --- Attributes that must stay raw -----------------------------------
    let mut raw: BTreeSet<usize> = BTreeSet::new();
    // join condition attributes (both fk side and key side);
    raw.extend(view.join_columns_of(catalog, table)?);
    // group-by attributes of the view;
    raw.extend(view.group_by_columns_of(table));
    // non-CSMAS aggregate arguments.
    raw.extend(aggregates::non_csmas_columns(view, table));

    // --- Attributes needed only as per-group SUMs ------------------------
    // After the Table 2 rewrite, a CSMAS argument is needed iff the rewrite
    // requests a SUM component (COUNT(a) → COUNT(*) drops the attribute).
    let mut summed: BTreeSet<usize> = BTreeSet::new();
    for item in &view.select {
        if let SelectItem::Agg { agg, .. } = item {
            if let (
                Some(col),
                Rewrite::Replaced {
                    needs_sum: true, ..
                },
            ) = (agg.arg, aggregates::rewrite(agg))
            {
                if col.table == table && !raw.contains(&col.column) {
                    summed.insert(col.column);
                }
            }
        }
    }

    // --- Step 1: COUNT(*) unless superfluous -----------------------------
    // COUNT(*) is superfluous exactly when the key of the table is among
    // the raw columns: every group then holds one tuple and the auxiliary
    // view degenerates into a PSJ view. In that case SUM replacement is
    // superfluous too and the attributes stay raw.
    let key_col = catalog.def(table)?.key_col;
    if raw.contains(&key_col) {
        raw.extend(summed.iter().copied());
        return Ok(CompressionSpec {
            group_cols: raw.into_iter().collect(),
            sum_cols: Vec::new(),
            include_count: false,
        });
    }

    Ok(CompressionSpec {
        group_cols: raw.into_iter().collect(),
        sum_cols: summed.into_iter().collect(),
        include_count: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_algebra::{AggFunc, Aggregate, CmpOp, ColRef, Condition, SelectItem};
    use md_relation::{DataType, Schema};

    struct Fx {
        cat: Catalog,
        time: TableId,
        product: TableId,
        sale: TableId,
    }

    fn fixture() -> Fx {
        let mut cat = Catalog::new();
        let time = cat
            .add_table(
                "time",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("month", DataType::Int),
                    ("year", DataType::Int),
                ]),
                0,
            )
            .unwrap();
        let product = cat
            .add_table(
                "product",
                Schema::from_pairs(&[("id", DataType::Int), ("brand", DataType::Str)]),
                0,
            )
            .unwrap();
        let sale = cat
            .add_table(
                "sale",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("timeid", DataType::Int),
                    ("productid", DataType::Int),
                    ("storeid", DataType::Int),
                    ("price", DataType::Double),
                ]),
                0,
            )
            .unwrap();
        cat.add_foreign_key(sale, 1, time).unwrap();
        cat.add_foreign_key(sale, 2, product).unwrap();
        Fx {
            cat,
            time,
            product,
            sale,
        }
    }

    fn product_sales(f: &Fx) -> GpsjView {
        GpsjView::new(
            "product_sales",
            vec![f.sale, f.time, f.product],
            vec![
                SelectItem::group_by(ColRef::new(f.time, 1), "month"),
                SelectItem::agg(
                    Aggregate::of(AggFunc::Sum, ColRef::new(f.sale, 4)),
                    "TotalPrice",
                ),
                SelectItem::agg(Aggregate::count_star(), "TotalCount"),
                SelectItem::agg(
                    Aggregate::distinct_of(AggFunc::Count, ColRef::new(f.product, 1)),
                    "DifferentBrands",
                ),
            ],
            vec![
                Condition::cmp_lit(ColRef::new(f.time, 2), CmpOp::Eq, 1997i64),
                Condition::eq_cols(ColRef::new(f.sale, 1), ColRef::new(f.time, 0)),
                Condition::eq_cols(ColRef::new(f.sale, 2), ColRef::new(f.product, 0)),
            ],
        )
    }

    #[test]
    fn paper_sale_dtl_compression() {
        // saleDTL: SELECT timeid, productid, SUM(price), COUNT(*) …
        // GROUP BY timeid, productid (paper Section 1.1 / Table 4).
        let f = fixture();
        let v = product_sales(&f);
        let spec = compress(&v, &f.cat, f.sale).unwrap();
        assert_eq!(spec.group_cols, vec![1, 2]); // timeid, productid
        assert_eq!(spec.sum_cols, vec![4]); // SUM(price)
        assert!(spec.include_count);
        // storeid and id are dropped by local reduction.
        assert!(!spec.group_cols.contains(&3));
        assert!(!spec.group_cols.contains(&0));
    }

    #[test]
    fn paper_time_dtl_degenerates() {
        // timeDTL: SELECT id, month — key retained, PSJ degeneration.
        let f = fixture();
        let v = product_sales(&f);
        let spec = compress(&v, &f.cat, f.time).unwrap();
        assert_eq!(spec.group_cols, vec![0, 1]); // id, month
        assert!(spec.sum_cols.is_empty());
        assert!(!spec.include_count);
        // year is a local-condition-only attribute and is dropped.
        assert!(!spec.group_cols.contains(&2));
    }

    #[test]
    fn paper_product_dtl_degenerates() {
        // productDTL: SELECT id, brand.
        let f = fixture();
        let v = product_sales(&f);
        let spec = compress(&v, &f.cat, f.product).unwrap();
        assert_eq!(spec.group_cols, vec![0, 1]);
        assert!(spec.sum_cols.is_empty());
        assert!(!spec.include_count);
    }

    #[test]
    fn product_sales_max_keeps_price_raw() {
        // Paper Section 3.2: MAX(price) + SUM(price) → price stays raw,
        // COUNT(*) included; SUM recomputed as SUM(price·SaleCount).
        let f = fixture();
        let v = GpsjView::new(
            "product_sales_max",
            vec![f.sale],
            vec![
                SelectItem::group_by(ColRef::new(f.sale, 2), "productid"),
                SelectItem::agg(
                    Aggregate::of(AggFunc::Max, ColRef::new(f.sale, 4)),
                    "MaxPrice",
                ),
                SelectItem::agg(
                    Aggregate::of(AggFunc::Sum, ColRef::new(f.sale, 4)),
                    "TotalPrice",
                ),
                SelectItem::agg(Aggregate::count_star(), "TotalCount"),
            ],
            vec![],
        );
        let spec = compress(&v, &f.cat, f.sale).unwrap();
        assert_eq!(spec.group_cols, vec![2, 4]); // productid, price (raw)
        assert!(spec.sum_cols.is_empty());
        assert!(spec.include_count);
    }

    #[test]
    fn count_a_drops_the_attribute() {
        // COUNT(price) rewrites to COUNT(*): price not stored at all.
        let f = fixture();
        let v = GpsjView::new(
            "counts",
            vec![f.sale],
            vec![
                SelectItem::group_by(ColRef::new(f.sale, 2), "productid"),
                SelectItem::agg(Aggregate::of(AggFunc::Count, ColRef::new(f.sale, 4)), "n"),
            ],
            vec![],
        );
        let spec = compress(&v, &f.cat, f.sale).unwrap();
        assert_eq!(spec.group_cols, vec![2]);
        assert!(spec.sum_cols.is_empty());
        assert!(spec.include_count);
    }

    #[test]
    fn root_key_in_group_by_degenerates_root() {
        let f = fixture();
        let v = GpsjView::new(
            "by_sale",
            vec![f.sale],
            vec![
                SelectItem::group_by(ColRef::new(f.sale, 0), "id"),
                SelectItem::agg(Aggregate::of(AggFunc::Sum, ColRef::new(f.sale, 4)), "p"),
            ],
            vec![],
        );
        let spec = compress(&v, &f.cat, f.sale).unwrap();
        // Key retained → degenerate: price stays raw, no count.
        assert_eq!(spec.group_cols, vec![0, 4]);
        assert!(spec.sum_cols.is_empty());
        assert!(!spec.include_count);
    }

    #[test]
    fn avg_needs_sum_component() {
        let f = fixture();
        let v = GpsjView::new(
            "avgs",
            vec![f.sale],
            vec![
                SelectItem::group_by(ColRef::new(f.sale, 2), "productid"),
                SelectItem::agg(Aggregate::of(AggFunc::Avg, ColRef::new(f.sale, 4)), "avgp"),
            ],
            vec![],
        );
        let spec = compress(&v, &f.cat, f.sale).unwrap();
        assert_eq!(spec.sum_cols, vec![4]);
        assert!(spec.include_count);
    }

    #[test]
    fn distinct_sum_keeps_attribute_raw() {
        let f = fixture();
        let v = GpsjView::new(
            "dsum",
            vec![f.sale],
            vec![
                SelectItem::group_by(ColRef::new(f.sale, 2), "productid"),
                SelectItem::agg(
                    Aggregate::distinct_of(AggFunc::Sum, ColRef::new(f.sale, 4)),
                    "dp",
                ),
            ],
            vec![],
        );
        let spec = compress(&v, &f.cat, f.sale).unwrap();
        assert!(spec.group_cols.contains(&4));
        assert!(spec.sum_cols.is_empty());
        assert!(spec.include_count);
    }
}

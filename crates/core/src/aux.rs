//! Auxiliary view definitions.
//!
//! Each base table `Rᵢ` referenced by a GPSJ view gets (unless eliminated)
//! an auxiliary view
//!
//! ```text
//! X_{Rᵢ} = (Π_{A_{Rᵢ}} σ_S Rᵢ) ⋉ X_{R_{j1}} ⋉ … ⋉ X_{R_{jn}}
//! ```
//!
//! (paper Section 3.2): a local-condition selection and a generalized
//! projection over `Rᵢ`, semijoin-reduced against the auxiliary views of the
//! tables `Rᵢ` depends on. After smart duplicate compression the projection
//! schema `A_{Rᵢ}` consists of *group columns* (attributes that must stay
//! raw), *sum columns* (`SUM(a)` for attributes used only in CSMASs) and a
//! `COUNT(*)` column, unless the key of `Rᵢ` is among the group columns, in
//! which case the view degenerates to a PSJ-style auxiliary view.

use md_algebra::Condition;
use md_relation::{Catalog, Column, DataType, Schema, TableId, Value};

use crate::error::Result;

/// The role of one column in an auxiliary view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuxColKind {
    /// A raw source attribute, part of the auxiliary view's group-by key.
    Group {
        /// Source column index in the base table.
        src_col: usize,
    },
    /// `SUM(src_col)` over the compressed duplicates of a group.
    Sum {
        /// Source column index in the base table.
        src_col: usize,
    },
    /// `COUNT(*)` over the compressed duplicates of a group.
    Count,
}

/// A named auxiliary view column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuxColumn {
    /// Role of the column.
    pub kind: AuxColKind,
    /// Output column name.
    pub name: String,
}

/// The definition of one auxiliary view `X_{Rᵢ}`.
#[derive(Debug, Clone)]
pub struct AuxViewDef {
    /// The base table this auxiliary view covers.
    pub table: TableId,
    /// View name, e.g. `saleDTL` (following the paper's examples).
    pub name: String,
    /// Output columns: group columns first (in source-column order), then
    /// sum columns, then the optional count column.
    pub columns: Vec<AuxColumn>,
    /// Local conditions pushed down onto the base table.
    pub local_conditions: Vec<Condition>,
    /// Tables whose auxiliary views this one is semijoin-reduced against —
    /// the tables `Rᵢ` directly depends on.
    pub semijoins: Vec<TableId>,
}

impl AuxViewDef {
    /// Source column indices of the group columns, in output order.
    pub fn group_source_cols(&self) -> Vec<usize> {
        self.columns
            .iter()
            .filter_map(|c| match c.kind {
                AuxColKind::Group { src_col } => Some(src_col),
                _ => None,
            })
            .collect()
    }

    /// `(output index, source column)` of each sum column.
    pub fn sum_cols(&self) -> Vec<(usize, usize)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c.kind {
                AuxColKind::Sum { src_col } => Some((i, src_col)),
                _ => None,
            })
            .collect()
    }

    /// Output index of the `COUNT(*)` column, if present.
    pub fn count_col(&self) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.kind == AuxColKind::Count)
    }

    /// Output index of the *group* column holding raw source attribute
    /// `src_col`, if it is stored raw.
    pub fn group_col_of_source(&self, src_col: usize) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.kind == AuxColKind::Group { src_col })
    }

    /// Output index of the *sum* column over source attribute `src_col`,
    /// if the attribute is compressed.
    pub fn sum_col_of_source(&self, src_col: usize) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.kind == AuxColKind::Sum { src_col })
    }

    /// Output index of the base table's key among the group columns, when
    /// the key is retained (always the case for dimension tables, whose key
    /// appears in a join condition).
    pub fn key_col(&self, catalog: &Catalog) -> Result<Option<usize>> {
        let key_src = catalog.def(self.table)?.key_col;
        Ok(self.group_col_of_source(key_src))
    }

    /// An auxiliary view is a *degenerate PSJ view* when smart duplicate
    /// compression found `COUNT(*)` superfluous (the table's key is among
    /// the group columns), so no aggregation happens at all.
    pub fn is_degenerate_psj(&self) -> bool {
        self.count_col().is_none() && self.sum_cols().is_empty()
    }

    /// The output schema of the auxiliary view.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        let base = &catalog.def(self.table)?.schema;
        let cols = self
            .columns
            .iter()
            .map(|c| {
                let dtype = match c.kind {
                    AuxColKind::Group { src_col } | AuxColKind::Sum { src_col } => {
                        base.column(src_col).dtype
                    }
                    AuxColKind::Count => DataType::Int,
                };
                Column::new(c.name.clone(), dtype)
            })
            .collect();
        Schema::new(cols).map_err(Into::into)
    }

    /// Width of one stored tuple in the paper's storage model
    /// (fields × 4 bytes).
    pub fn paper_row_bytes(&self) -> u64 {
        self.columns.len() as u64 * Value::PAPER_FIELD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_relation::{DataType, Schema as RSchema};

    fn sale_aux() -> (Catalog, AuxViewDef) {
        let mut cat = Catalog::new();
        let sale = cat
            .add_table(
                "sale",
                RSchema::from_pairs(&[
                    ("id", DataType::Int),
                    ("timeid", DataType::Int),
                    ("productid", DataType::Int),
                    ("price", DataType::Double),
                ]),
                0,
            )
            .unwrap();
        // The paper's saleDTL: group (timeid, productid), SUM(price), COUNT(*).
        let def = AuxViewDef {
            table: sale,
            name: "saleDTL".into(),
            columns: vec![
                AuxColumn {
                    kind: AuxColKind::Group { src_col: 1 },
                    name: "timeid".into(),
                },
                AuxColumn {
                    kind: AuxColKind::Group { src_col: 2 },
                    name: "productid".into(),
                },
                AuxColumn {
                    kind: AuxColKind::Sum { src_col: 3 },
                    name: "SalePrice".into(),
                },
                AuxColumn {
                    kind: AuxColKind::Count,
                    name: "SaleCount".into(),
                },
            ],
            local_conditions: vec![],
            semijoins: vec![],
        };
        (cat, def)
    }

    #[test]
    fn accessors() {
        let (cat, def) = sale_aux();
        assert_eq!(def.group_source_cols(), vec![1, 2]);
        assert_eq!(def.sum_cols(), vec![(2, 3)]);
        assert_eq!(def.count_col(), Some(3));
        assert_eq!(def.group_col_of_source(2), Some(1));
        assert_eq!(def.group_col_of_source(3), None);
        assert_eq!(def.sum_col_of_source(3), Some(2));
        assert!(!def.is_degenerate_psj());
        // sale.id (the key) is not retained.
        assert_eq!(def.key_col(&cat).unwrap(), None);
    }

    #[test]
    fn schema_types_follow_sources() {
        let (cat, def) = sale_aux();
        let s = def.schema(&cat).unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column(0).dtype, DataType::Int);
        assert_eq!(s.column(2).name, "SalePrice");
        assert_eq!(s.column(2).dtype, DataType::Double);
        assert_eq!(s.column(3).dtype, DataType::Int);
    }

    #[test]
    fn paper_row_bytes_counts_fields() {
        let (_, def) = sale_aux();
        // 4 fields × 4 bytes — the paper's "167 MBytes" arithmetic unit.
        assert_eq!(def.paper_row_bytes(), 16);
    }

    #[test]
    fn degenerate_psj_detection() {
        let (cat, mut def) = sale_aux();
        let _ = cat;
        def.columns = vec![
            AuxColumn {
                kind: AuxColKind::Group { src_col: 0 },
                name: "id".into(),
            },
            AuxColumn {
                kind: AuxColKind::Group { src_col: 3 },
                name: "price".into(),
            },
        ];
        assert!(def.is_degenerate_psj());
    }
}

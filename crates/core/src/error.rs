//! Error type for the derivation layer.

use std::fmt;

use md_algebra::AlgebraError;
use md_relation::RelationError;

/// Result alias used throughout `md-core`.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors raised while deriving auxiliary views.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The view's extended join graph is not a tree (Section 3.3 assumes a
    /// tree: at most one edge into any vertex, no cycles, no self-joins).
    NotATree {
        /// The view involved.
        view: String,
        /// Explanation of the violation.
        detail: String,
    },
    /// The view contains superfluous aggregates, which Section 2.1 assumes
    /// away; the offending output aliases are listed.
    SuperfluousAggregates {
        /// The view involved.
        view: String,
        /// Output aliases of the superfluous aggregates.
        aliases: Vec<String>,
    },
    /// Error bubbled up from the algebra layer.
    Algebra(AlgebraError),
    /// Error bubbled up from the storage layer.
    Relation(RelationError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotATree { view, detail } => {
                write!(f, "extended join graph of '{view}' is not a tree: {detail}")
            }
            CoreError::SuperfluousAggregates { view, aliases } => {
                write!(
                    f,
                    "view '{view}' contains superfluous aggregates ({}) — replace them by \
                     the plain attribute (paper Section 2.1 assumption)",
                    aliases.join(", ")
                )
            }
            CoreError::Algebra(e) => write!(f, "{e}"),
            CoreError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Algebra(e) => Some(e),
            CoreError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for CoreError {
    fn from(e: AlgebraError) -> Self {
        CoreError::Algebra(e)
    }
}

impl From<RelationError> for CoreError {
    fn from(e: RelationError) -> Self {
        CoreError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let e: CoreError = RelationError::NullNotSupported.into();
        assert!(matches!(e, CoreError::Relation(_)));
        let e: CoreError = AlgebraError::InvalidView {
            view: "v".into(),
            detail: "d".into(),
        }
        .into();
        assert!(matches!(e, CoreError::Algebra(_)));
    }

    #[test]
    fn display_mentions_view() {
        let e = CoreError::NotATree {
            view: "v".into(),
            detail: "cycle".into(),
        };
        assert!(e.to_string().contains("'v'"));
    }
}

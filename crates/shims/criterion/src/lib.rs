//! A minimal, offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by plain `std::time::Instant` wall-clock timing.
//!
//! No statistics, no plots, no regression detection: each benchmark is
//! warmed up briefly, then timed for `sample_size` samples, and the
//! median per-iteration time is printed (with throughput when set).
//! The numbers are honest wall-clock medians, good enough for the
//! relative comparisons (incremental vs. recompute, WAL on vs. off)
//! the benches exist to make.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one routine
/// call per setup either way; the variants exist for source
/// compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Smoke-test mode (`--test`): run each routine exactly once to prove
    /// it works, skip warm-up and repeated sampling.
    smoke: bool,
    /// Median per-iteration time, filled in by the `iter*` methods.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            let t = Instant::now();
            black_box(routine());
            self.measured = Some(t.elapsed());
            return;
        }
        // Warm up and estimate a per-call cost to pick an inner count.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~2ms per sample, capped to keep total runtime bounded.
        let inner =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            samples.push(t.elapsed() / inner as u32);
        }
        self.measured = Some(median(samples));
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let runs = if self.smoke { 1 } else { self.samples };
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed());
        }
        self.measured = Some(median(samples));
    }
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    smoke: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the throughput used to report rates for later benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            measured: None,
        };
        f(&mut bencher);
        self.report(&id, bencher.measured);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            smoke: self.smoke,
            measured: None,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.measured);
        self
    }

    /// Marks the group complete (all reporting already happened).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, measured: Option<Duration>) {
        let mut line = format!("{}/{}", self.name, id.id);
        match measured {
            None => line.push_str("  (no measurement: bencher never invoked)"),
            Some(t) => {
                let _ = write!(line, "  time: [{}]", fmt_duration(t));
                match self.throughput {
                    Some(Throughput::Elements(n)) if !t.is_zero() => {
                        let rate = n as f64 / t.as_secs_f64();
                        let _ = write!(line, "  thrpt: [{} elem/s]", fmt_rate(rate));
                    }
                    Some(Throughput::Bytes(n)) if !t.is_zero() => {
                        let rate = n as f64 / t.as_secs_f64();
                        let _ = write!(line, "  thrpt: [{} B/s]", fmt_rate(rate));
                    }
                    _ => {}
                }
            }
        }
        self.criterion.emit(&line);
    }
}

fn fmt_duration(t: Duration) -> String {
    let ns = t.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {
    /// Captured output for tests; `None` prints to stdout.
    sink: Option<Vec<String>>,
    /// `--test` smoke mode: run every routine once, don't measure.
    smoke: bool,
}

impl Criterion {
    /// Reads the harness flags real criterion supports that the shim
    /// honors: `--test` switches to smoke mode (each benchmark routine
    /// runs exactly once — CI uses it to prove the benches still work
    /// without paying for real sampling). Everything else is ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.smoke = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            smoke: self.smoke,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Collected at exit by `criterion_main!`; here for API parity.
    pub fn final_summary(&self) {}

    fn emit(&mut self, line: &str) {
        match &mut self.sink {
            Some(lines) => lines.push(line.to_owned()),
            None => println!("{line}"),
        }
    }
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn captured() -> Criterion {
        Criterion {
            sink: Some(Vec::new()),
            smoke: false,
        }
    }

    #[test]
    fn groups_report_time_and_throughput() {
        let mut c = captured();
        {
            let mut group = c.benchmark_group("demo");
            group.sample_size(5);
            group.throughput(Throughput::Elements(100));
            group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u64; 64],
                    |v| v.iter().sum::<u64>(),
                    BatchSize::LargeInput,
                )
            });
            group.finish();
        }
        let lines = c.sink.unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("demo/sum/100"), "{}", lines[0]);
        assert!(lines[0].contains("time:"), "{}", lines[0]);
        assert!(lines[0].contains("elem/s"), "{}", lines[0]);
        assert!(lines[1].starts_with("demo/batched"), "{}", lines[1]);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert_eq!(fmt_rate(1500.0), "1.500K");
        assert_eq!(fmt_rate(2.5e6), "2.500M");
    }

    #[test]
    fn smoke_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion {
            sink: Some(Vec::new()),
            smoke: true,
        };
        let mut direct = 0u32;
        let mut batched = 0u32;
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(50);
            group.bench_function("direct", |b| b.iter(|| direct += 1));
            group.bench_function("batched", |b| {
                b.iter_batched(|| (), |()| batched += 1, BatchSize::SmallInput)
            });
            group.finish();
        }
        assert_eq!(direct, 1, "smoke mode must ignore sample_size");
        assert_eq!(batched, 1);
        assert_eq!(c.sink.unwrap().len(), 2, "smoke runs still report");
    }

    criterion_group!(sample_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macros_produce_runnable_groups() {
        sample_group();
    }
}

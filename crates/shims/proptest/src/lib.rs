//! A minimal, offline stand-in for the crates.io `proptest` crate.
//!
//! The workspace must build and test without network access, so this shim
//! implements exactly the subset of the proptest 1.x API its property
//! tests use: the [`proptest!`] / [`prop_assert!`] / [`prop_assume!`] /
//! [`prop_oneof!`] macros, [`strategy::Strategy`] with `prop_map`,
//! integer-range and string-pattern strategies, [`arbitrary::any`],
//! [`collection::vec`], and a deterministic case runner configured by
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, deliberately accepted:
//! * no shrinking — a failing case reports its inputs but is not
//!   minimized;
//! * no persistence of failing seeds (`.proptest-regressions` files are
//!   ignored);
//! * string "regex" strategies support only the `[class]{m,n}` shape the
//!   workspace actually uses, falling back to short alphanumerics;
//! * generation is seeded deterministically per test and case index, so
//!   runs are reproducible by construction.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike the real proptest `Strategy` (which produces shrinkable
    /// value *trees*), this shim generates plain values directly.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy, produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice among several strategies with a common value type;
    /// the expansion target of [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String-pattern strategy: `&'static str` generates strings matching
    /// the pattern, as in real proptest. Only the `[class]{m,n}` shape is
    /// parsed; anything else falls back to short alphanumeric strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_pattern(self).unwrap_or_else(|| {
                (
                    ('a'..='z').chain('A'..='Z').chain('0'..='9').collect(),
                    0,
                    16,
                )
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[chars]{m,n}` into (alphabet, m, n); `None` if the pattern
    /// has any other shape.
    fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class, counts) = rest.split_at(close);
        let counts = counts.strip_prefix(']')?;
        let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        let (min, max) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
        if min > max {
            return None;
        }

        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let c = if c == '\\' { chars.next()? } else { c };
            if chars.peek() == Some(&'-') && {
                let mut ahead = chars.clone();
                ahead.next();
                ahead.peek().is_some()
            } {
                chars.next(); // the '-'
                let hi = chars.next()?;
                let hi = if hi == '\\' { chars.next()? } else { hi };
                alphabet.extend(c..=hi);
            } else {
                alphabet.push(c);
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, min, max))
    }
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy backing `any::<T>()` for primitives; generation is
    /// per-type below.
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary {
        ($($t:ty => |$rng:ident| $gen:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
        )*};
    }

    impl_arbitrary! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        // Bias toward boundary values, as the real crate's edge-case
        // machinery does.
        i64 => |rng| match rng.below(16) {
            0 => 0,
            1 => i64::MAX,
            2 => i64::MIN,
            3 => -1,
            _ => rng.next_u64() as i64,
        },
        // Finite doubles plus signed infinities; never NaN (round-trip
        // properties compare generated values with `==`).
        f64 => |rng| match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::MAX,
            5 => f64::MIN_POSITIVE,
            _ => loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    break v;
                }
            },
        },
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration, the deterministic RNG, and the case loop.
pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the property is falsified.
        Fail(String),
        /// `prop_assume!` filtered the inputs — try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsified-property error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// An input-rejected error.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// SplitMix64 — deterministic, seeded per (test, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Runs `case` until `config.cases` non-rejected executions complete,
    /// panicking on the first failure. Called by the [`proptest!`]
    /// expansion; not part of the real crate's API.
    ///
    /// [`proptest!`]: crate::proptest
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut hasher = DefaultHasher::new();
        test_name.hash(&mut hasher);
        let base_seed = hasher.finish();

        let mut accepted: u32 = 0;
        let mut rejected: u64 = 0;
        // Same global-reject budget as the real crate's default (1024),
        // scaled by case count so sparse assumptions still converge.
        let max_rejects = 1024 + config.cases as u64 * 8;
        let mut attempt: u64 = 0;
        while accepted < config.cases {
            let mut rng =
                TestRng::from_seed(base_seed ^ attempt.wrapping_mul(0xA24B_AED4_963E_E407));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{test_name}': too many inputs rejected \
                             ({rejected} rejects for {accepted} accepted cases)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{test_name}' falsified on case #{accepted} \
                         (attempt {attempt}, shim seed {base_seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

/// The glob import every proptest-based test starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that loops over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| {
                                $body
                                Ok(())
                            })();
                        outcome
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Not routed through `format!`: stringified conditions may contain
        // braces, which a format literal would reject.
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current inputs (they don't satisfy a precondition); the
/// runner draws a fresh case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let strat = "[a-zA-Z0-9 '\\-]{0,24}";
        let mut rng = TestRng::from_seed(3);
        let mut max_len = 0;
        for _ in 0..500 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 24);
            max_len = max_len.max(s.chars().count());
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || c == ' ' || c == '\'' || c == '-',
                    "unexpected char {c:?} in {s:?}"
                );
            }
        }
        assert!(max_len > 10, "length range under-sampled (max {max_len})");
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![(0u8..1), (10u8..11), (20u8..21)];
        let mut rng = TestRng::from_seed(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match Strategy::generate(&strat, &mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn any_f64_never_yields_nan() {
        let strat = any::<f64>();
        let mut rng = TestRng::from_seed(17);
        for _ in 0..2000 {
            assert!(!Strategy::generate(&strat, &mut rng).is_nan());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_args(a in 0u64..100, b in 5usize..9) {
            prop_assert!(a < 100);
            prop_assert!((5..9).contains(&b), "b={b}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, b + 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_macro_form(x in 0i64..3) {
            prop_assert!(x >= 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_context() {
        let cfg = ProptestConfig {
            cases: 4,
            ..ProptestConfig::default()
        };
        crate::test_runner::run_cases(&cfg, "doomed", |_| Err(TestCaseError::fail("always fails")));
    }
}

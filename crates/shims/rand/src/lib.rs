//! A minimal, offline stand-in for the crates.io `rand` crate.
//!
//! The workspace must build and test without network access (the
//! warehouse's own premise — unreachable sources — extends to its build).
//! This shim implements exactly the subset of the `rand` 0.8 API the
//! workload generators use: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`], backed
//! by the xoshiro256** generator seeded through SplitMix64.
//!
//! Determinism matters more than statistical quality here: every workload
//! is seeded, and streams must be reproducible across runs and platforms.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive
    /// integer ranges). Generic over the output type, as in the real
    /// crate, so range literals take their type from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        // 53 uniform mantissa bits, compared against p.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range values of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Types with a uniform distribution over ranges. The `SampleRange`
/// impls below are blanket impls over this trait (as in the real crate),
/// which keeps a range literal's integer type unified with the call
/// site's expected output type during inference.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform draw from `[0, bound)` via 128-bit widening multiply (Lemire's
/// unbiased-enough mapping; bias is < 2⁻⁶⁴, irrelevant for workloads).
fn below<G: RngCore>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
            fn sample_inclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the shim's standard generator.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (which is
    /// ChaCha12); workloads only require *a* deterministic stream, not a
    /// bit-compatible one.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator as [`StdRng`]; kept as a distinct name to mirror the
    /// real crate's API surface.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_vals: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_vals: Vec<u64> = (0..10).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&v));
            let v = rng.gen_range(0..100u8);
            assert!(v < 100);
            let v = rng.gen_range(-4..=4i32);
            assert!((-4..=4).contains(&v));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..=5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

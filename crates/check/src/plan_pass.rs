//! Pass 6 — plan-audit lints (`MD040`, `MD041`).
//!
//! Runs Algorithm 3.2 (`md_core::derive`) on the (error-free) view and
//! audits the resulting [`DerivedPlan`]: auxiliary views that are
//! materialized only because of exposed updates (a tighter update contract
//! would eliminate them), and a root auxiliary view that degenerates to a
//! plain PSJ view because the root's key is preserved (smart duplicate
//! compression, Algorithm 3.1, never fires).

use std::collections::BTreeSet;

use md_algebra::{GpsjView, SelectItem};
use md_core::aggregates::{self, ChangeRegime};
use md_core::join_graph::ExtendedJoinGraph;
use md_core::need::in_need_of_another;
use md_core::{derive, exposure};
use md_relation::{Catalog, TableId};
use md_sql::ParsedView;

use crate::diag::{CheckReport, Code, Diagnostic};
use crate::resolve_pass::{from_span, select_span, statement_span};

pub(crate) fn run(
    report: &mut CheckReport,
    parsed: &ParsedView,
    view: &GpsjView,
    catalog: &Catalog,
) {
    // Earlier passes guarantee derivation succeeds; bail quietly otherwise
    // (the defect was already reported or is a catalog inconsistency).
    let Ok(plan) = derive::derive(view, catalog) else {
        return;
    };

    // MD040: materialized auxiliary views that a tighter update contract
    // would eliminate. Re-run the Algorithm 3.2 elimination test with
    // exposure ignored (referential integrity still required): if the table
    // passes, only the contract stands between it and omission.
    for entry in &plan.aux {
        let table = entry.table();
        let Some(aux) = entry.as_materialized() else {
            continue;
        };
        let depends_ignoring_exposure = depends_on_all_via_fk(&plan.graph, catalog, table);
        let needed_by_other = match plan.regime {
            ChangeRegime::General => in_need_of_another(&plan.graph, table),
            ChangeRegime::AppendOnly => false,
        };
        let non_csmas = aggregates::blocking_non_csmas_columns(view, table, plan.regime);
        let currently_blocked_by_exposure =
            !md_core::join_graph::transitively_depends_on_all(view, catalog, &plan.graph, table)
                .unwrap_or(true);
        if depends_ignoring_exposure
            && currently_blocked_by_exposure
            && !needed_by_other
            && non_csmas.is_empty()
        {
            let exposed = exposed_table_summary(view, catalog, &plan.graph);
            let def_name = catalog
                .def(table)
                .map(|d| d.name.clone())
                .unwrap_or_default();
            let idx = view.tables.iter().position(|&t| t == table);
            report.push(
                Diagnostic::new(
                    Code::Md040,
                    format!(
                        "auxiliary view '{}' for '{def_name}' could be omitted under a \
                         tighter update contract",
                        aux.name
                    ),
                )
                .with_span(idx.and_then(|i| from_span(parsed, i)))
                .with_label(format!(
                    "materialized at {} bytes per row",
                    aux.paper_row_bytes()
                ))
                .with_note(format!(
                    "elimination fails only because of exposed updates on {exposed}"
                ))
                .with_help(
                    "declare the affected tables append-only (or restrict their updatable \
                     columns) and re-register the view",
                ),
            );
        }
    }

    // MD041: the root auxiliary view keeps every detail row when the root's
    // key is preserved — smart duplicate compression cannot fire.
    let root = plan.graph.root();
    if let Some(aux) = plan.aux_for(root) {
        if aux.is_degenerate_psj() {
            let root_name = catalog
                .def(root)
                .map(|d| d.name.clone())
                .unwrap_or_default();
            let key_col = catalog.def(root).map(|d| d.key_col).unwrap_or(0);
            let key_item = view.select.iter().position(|it| {
                matches!(it, SelectItem::GroupBy { col, .. }
                    if col.table == root && col.column == key_col)
            });
            let span = key_item
                .and_then(|i| select_span(parsed, i))
                .or_else(|| statement_span(parsed));
            report.push(
                Diagnostic::new(
                    Code::Md041,
                    format!(
                        "the auxiliary view '{}' for root '{root_name}' degenerates to a \
                         PSJ view",
                        aux.name
                    ),
                )
                .with_span(span)
                .with_label("the root table's key is preserved, so every detail row is kept")
                .with_note(
                    "smart duplicate compression (Algorithm 3.1) only compresses when the \
                     key is projected away",
                ),
            );
        }
    }
}

/// Transitive dependence with exposure ignored: every edge with declared
/// referential integrity counts as a dependency edge.
fn depends_on_all_via_fk(graph: &ExtendedJoinGraph, catalog: &Catalog, table: TableId) -> bool {
    let mut reached = BTreeSet::new();
    let mut stack = vec![table];
    while let Some(t) = stack.pop() {
        if reached.insert(t) {
            for e in graph.children(t) {
                if catalog.foreign_key(e.from, e.fk_col, e.to).is_some() {
                    stack.push(e.to);
                }
            }
        }
    }
    reached.len() == graph.tables().len()
}

/// `"'time' (year)"`-style listing of the exposed tables and columns, in
/// table order.
fn exposed_table_summary(view: &GpsjView, catalog: &Catalog, graph: &ExtendedJoinGraph) -> String {
    let mut parts = Vec::new();
    for &t in graph.tables() {
        let Ok(cols) = exposure::exposed_columns(view, catalog, t) else {
            continue;
        };
        if cols.is_empty() {
            continue;
        }
        let Ok(def) = catalog.def(t) else { continue };
        let names: Vec<&str> = cols
            .iter()
            .map(|&c| def.schema.column(c).name.as_str())
            .collect();
        parts.push(format!("'{}' ({})", def.name, names.join(", ")));
    }
    if parts.is_empty() {
        "no table".to_owned()
    } else {
        parts.join(", ")
    }
}

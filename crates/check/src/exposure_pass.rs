//! Pass 5 — exposure analysis (`MD034`).
//!
//! Paper Section 2.1: a table has *exposed updates* when its update
//! contract allows changes to attributes used in selection or join
//! conditions. Exposure disables join reductions against the table
//! (Section 2.2) and is the usual reason auxiliary views stay larger than
//! the paper's minimum — so each exposed column is reported at the
//! condition that exposes it.

use md_algebra::GpsjView;
use md_core::exposure;
use md_relation::Catalog;
use md_sql::ParsedView;

use crate::diag::{CheckReport, Code, Diagnostic};
use crate::resolve_pass::cond_span;

pub(crate) fn run(
    report: &mut CheckReport,
    parsed: &ParsedView,
    view: &GpsjView,
    catalog: &Catalog,
) {
    for &table in &view.tables {
        let Ok(exposed) = exposure::exposed_columns(view, catalog, table) else {
            continue;
        };
        let Ok(def) = catalog.def(table) else {
            continue;
        };
        for col in exposed {
            // The first condition mentioning the exposed column is the
            // exposure site (view conditions parallel the parsed ones).
            let site = view.conditions.iter().position(|c| {
                c.columns()
                    .iter()
                    .any(|r| r.table == table && r.column == col)
            });
            let col_name = &def.schema.column(col).name;
            report.push(
                Diagnostic::new(
                    Code::Md034,
                    format!(
                        "updates to '{}.{col_name}' are exposed through this condition",
                        def.name
                    ),
                )
                .with_span(site.and_then(|i| cond_span(parsed, i)))
                .with_label(format!(
                    "'{col_name}' is updatable under the table's contract"
                ))
                .with_note(format!(
                    "exposed updates disable join reductions against '{}' (Section 2.2), \
                     keeping its auxiliary view and its parents' larger",
                    def.name
                ))
                .with_help(format!(
                    "tighten the contract (set_updatable_columns / set_append_only) if the \
                     source never updates '{}.{col_name}'",
                    def.name
                )),
            );
        }
    }
}

//! Pass 2 — span-aware name resolution (`MD010`–`MD016`).
//!
//! Mirrors the checks of `md_sql::resolve` but reports *every* defect with
//! a source span instead of stopping at the first, and keeps going within
//! the pass so one statement yields one complete report. Resolution errors
//! are fatal to later passes: the join-graph and aggregate analyses need
//! fully resolved column references.

use std::collections::BTreeSet;

use md_algebra::{Aggregate, CmpOp, ColRef};
use md_relation::{Catalog, DataType, TableId};
use md_sql::parser::{ParsedExpr, ParsedLiteral, ParsedOperand, QualName};
use md_sql::{ParsedView, Span};

use crate::diag::{CheckReport, Code, Diagnostic};

/// One side of a resolved condition.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ROperand {
    /// A resolved column.
    Col(ColRef),
    /// A literal (type checks already done here).
    Lit,
}

/// A fully resolved `WHERE` conjunct, tagged with its index into
/// `parsed.conditions` (for span lookup in later passes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RCond {
    pub index: usize,
    pub left: ROperand,
    pub op: CmpOp,
    pub right: ROperand,
}

/// The output of the pass: resolved FROM tables (in clause order) and
/// resolved conditions.
#[derive(Debug, Clone)]
pub(crate) struct Resolved {
    pub tables: Vec<TableId>,
    pub conds: Vec<RCond>,
}

/// Runs the pass. Returns `None` when any error was emitted (later passes
/// must not run on partially resolved input).
pub(crate) fn run(
    report: &mut CheckReport,
    parsed: &ParsedView,
    catalog: &Catalog,
) -> Option<Resolved> {
    let errors_before = report.error_count();

    // FROM clause.
    let mut tables: Vec<TableId> = Vec::with_capacity(parsed.from.len());
    let mut unknown_tables: BTreeSet<&str> = BTreeSet::new();
    for (i, name) in parsed.from.iter().enumerate() {
        let span = from_span(parsed, i);
        match catalog.table_id(name) {
            None => {
                unknown_tables.insert(name);
                report.push(
                    Diagnostic::new(Code::Md010, format!("unknown table '{name}' in FROM"))
                        .with_span(span)
                        .with_help(format!("available tables: {}", table_names(catalog))),
                );
            }
            Some(id) if tables.contains(&id) => {
                report.push(
                    Diagnostic::new(Code::Md011, format!("table '{name}' listed twice in FROM"))
                        .with_span(span)
                        .with_label("self-joins are outside the GPSJ class"),
                );
            }
            Some(id) => tables.push(id),
        }
    }

    let r = Resolver {
        catalog,
        tables: &tables,
        unknown_tables: &unknown_tables,
    };

    // Select list: resolve columns and aggregate arguments, collect the
    // effective output aliases (explicit or the resolver's defaults).
    let mut plain_cols: Vec<(ColRef, usize)> = Vec::new();
    let mut aggs: Vec<(Aggregate, usize)> = Vec::new();
    let mut aliases: Vec<(String, usize)> = Vec::new();
    for (i, item) in parsed.select.iter().enumerate() {
        let span = select_span(parsed, i);
        match &item.expr {
            ParsedExpr::Col(qn) => {
                if let Some(col) = r.resolve_col(report, qn, span) {
                    plain_cols.push((col, i));
                }
                aliases.push((item.alias.clone().unwrap_or_else(|| qn.column.clone()), i));
            }
            ParsedExpr::Agg {
                func,
                distinct,
                arg,
            } => {
                let agg = match arg {
                    None => Some(Aggregate::count_star()),
                    Some(qn) => r.resolve_col(report, qn, span).map(|col| {
                        if *distinct {
                            Aggregate::distinct_of(*func, col)
                        } else {
                            Aggregate::of(*func, col)
                        }
                    }),
                };
                if let Some(agg) = agg {
                    aggs.push((agg, i));
                }
                let alias = item.alias.clone().unwrap_or_else(|| match arg {
                    None => "count_all".to_owned(),
                    Some(qn) => format!(
                        "{}_{}{}",
                        func.name().to_ascii_lowercase(),
                        if *distinct { "distinct_" } else { "" },
                        qn.column
                    ),
                });
                aliases.push((alias, i));
            }
        }
    }

    // MD016: duplicate output aliases.
    for (i, (alias, item)) in aliases.iter().enumerate() {
        if aliases[..i].iter().any(|(a, _)| a == alias) {
            report.push(
                Diagnostic::new(Code::Md016, format!("duplicate output alias '{alias}'"))
                    .with_span(select_span(parsed, *item))
                    .with_help("rename one of the select items with AS"),
            );
        }
    }

    // GROUP BY columns.
    let mut group_cols: Vec<(ColRef, usize)> = Vec::new();
    for (i, qn) in parsed.group_by.iter().enumerate() {
        let span = parsed.spans.group_by.get(i).copied();
        if let Some(col) = r.resolve_col(report, qn, span) {
            group_cols.push((col, i));
        }
    }

    // MD014: plain select columns and GROUP BY must coincide (the paper
    // requires all group-by attributes to be projected).
    for &(col, item) in &plain_cols {
        if !group_cols.iter().any(|&(g, _)| g == col) {
            report.push(
                Diagnostic::new(
                    Code::Md014,
                    format!(
                        "select column {} must appear in GROUP BY",
                        col.display(catalog)
                    ),
                )
                .with_span(select_span(parsed, item))
                .with_label("projected but not grouped"),
            );
        }
    }
    for &(col, i) in &group_cols {
        if !plain_cols.iter().any(|&(p, _)| p == col) {
            report.push(
                Diagnostic::new(
                    Code::Md014,
                    format!(
                        "GROUP BY column {} must be projected in the select list",
                        col.display(catalog)
                    ),
                )
                .with_span(parsed.spans.group_by.get(i).copied())
                .with_note("GPSJ views project all group-by attributes"),
            );
        }
    }

    // Conditions (MD015 for literal-only and type-mismatched comparisons).
    let mut conds: Vec<RCond> = Vec::new();
    for (i, cond) in parsed.conditions.iter().enumerate() {
        let span = cond_span(parsed, i);
        let mut side = |op: &ParsedOperand| -> Option<ROperand> {
            match op {
                ParsedOperand::Col(qn) => r.resolve_col(report, qn, span).map(ROperand::Col),
                ParsedOperand::Lit(_) => Some(ROperand::Lit),
            }
        };
        let (left, right) = (side(&cond.left), side(&cond.right));
        if let (ParsedOperand::Lit(_), ParsedOperand::Lit(_)) = (&cond.left, &cond.right) {
            report.push(
                Diagnostic::new(
                    Code::Md015,
                    "conditions between two literals are not supported",
                )
                .with_span(span),
            );
            continue;
        }
        // Column-literal type compatibility (either orientation).
        let pairs = [
            (&cond.left, &cond.right, left),
            (&cond.right, &cond.left, right),
        ];
        for (col_side, lit_side, resolved) in pairs {
            if let (ParsedOperand::Col(_), ParsedOperand::Lit(lit)) = (col_side, lit_side) {
                if let Some(ROperand::Col(col)) = resolved {
                    check_literal_type(report, catalog, col, lit, span);
                }
            }
        }
        if let (Some(left), Some(right)) = (left, right) {
            conds.push(RCond {
                index: i,
                left,
                op: cond.op,
                right,
            });
        }
    }

    // HAVING conjuncts must reference an output of the view.
    for (i, h) in parsed.having.iter().enumerate() {
        let span = parsed.spans.having.get(i).copied();
        match &h.expr {
            ParsedExpr::Agg {
                func,
                distinct,
                arg,
            } => {
                let wanted = match arg {
                    None => Some(Aggregate::count_star()),
                    Some(qn) => r.resolve_col(report, qn, span).map(|col| {
                        if *distinct {
                            Aggregate::distinct_of(*func, col)
                        } else {
                            Aggregate::of(*func, col)
                        }
                    }),
                };
                if let Some(wanted) = wanted {
                    if !aggs.iter().any(|(a, _)| *a == wanted) {
                        report.push(
                            Diagnostic::new(
                                Code::Md015,
                                format!(
                                    "HAVING aggregate {} is not in the select list",
                                    func.name()
                                ),
                            )
                            .with_span(span)
                            .with_note("GPSJ summary tables can only restrict projected outputs"),
                        );
                    }
                }
            }
            ParsedExpr::Col(qn) => {
                let alias_match =
                    qn.table.is_none() && aliases.iter().any(|(a, _)| *a == qn.column);
                if !alias_match {
                    if let Some(col) = r.resolve_col(report, qn, span) {
                        if !plain_cols.iter().any(|&(p, _)| p == col) {
                            report.push(
                                Diagnostic::new(
                                    Code::Md015,
                                    format!(
                                        "HAVING references '{}', which is neither an output alias \
                                         nor a group-by column",
                                        qn.to_sql()
                                    ),
                                )
                                .with_span(span),
                            );
                        }
                    }
                }
            }
        }
    }

    if report.error_count() > errors_before {
        return None;
    }
    Some(Resolved { tables, conds })
}

struct Resolver<'a> {
    catalog: &'a Catalog,
    tables: &'a [TableId],
    unknown_tables: &'a BTreeSet<&'a str>,
}

impl Resolver<'_> {
    /// Resolves one possibly-qualified name, emitting at most one
    /// diagnostic on failure.
    fn resolve_col(
        &self,
        report: &mut CheckReport,
        qn: &QualName,
        span: Option<Span>,
    ) -> Option<ColRef> {
        match &qn.table {
            Some(tname) => {
                let id = match self.catalog.table_id(tname) {
                    Some(id) => id,
                    None => {
                        // Already reported at the FROM clause; repeating it
                        // for every reference adds noise, not information.
                        if !self.unknown_tables.contains(tname.as_str()) {
                            report.push(
                                Diagnostic::new(Code::Md010, format!("unknown table '{tname}'"))
                                    .with_span(span)
                                    .with_help(format!(
                                        "available tables: {}",
                                        table_names(self.catalog)
                                    )),
                            );
                        }
                        return None;
                    }
                };
                if !self.tables.contains(&id) {
                    report.push(
                        Diagnostic::new(
                            Code::Md010,
                            format!("table '{tname}' is not listed in FROM"),
                        )
                        .with_span(span),
                    );
                    return None;
                }
                let def = self.catalog.def(id).ok()?;
                match def.schema.index_of(&qn.column) {
                    Some(col) => Some(ColRef::new(id, col)),
                    None => {
                        report.push(
                            Diagnostic::new(
                                Code::Md012,
                                format!("unknown column '{}' in table '{tname}'", qn.column),
                            )
                            .with_span(span)
                            .with_help(format!(
                                "columns of '{tname}': {}",
                                column_names(self.catalog, id)
                            )),
                        );
                        None
                    }
                }
            }
            None => {
                let mut found: Option<ColRef> = None;
                for &id in self.tables {
                    let def = self.catalog.def(id).ok()?;
                    if let Some(col) = def.schema.index_of(&qn.column) {
                        if let Some(prev) = found {
                            let prev_name = self
                                .catalog
                                .def(prev.table)
                                .map(|d| d.name.clone())
                                .unwrap_or_default();
                            report.push(
                                Diagnostic::new(
                                    Code::Md013,
                                    format!(
                                        "ambiguous column '{}': found in '{prev_name}' and '{}'",
                                        qn.column, def.name
                                    ),
                                )
                                .with_span(span)
                                .with_help(format!(
                                    "qualify the reference, e.g. '{prev_name}.{}'",
                                    qn.column
                                )),
                            );
                            return None;
                        }
                        found = Some(ColRef::new(id, col));
                    }
                }
                if found.is_none() {
                    report.push(
                        Diagnostic::new(
                            Code::Md012,
                            format!("column '{}' not found in any FROM table", qn.column),
                        )
                        .with_span(span),
                    );
                }
                found
            }
        }
    }
}

fn check_literal_type(
    report: &mut CheckReport,
    catalog: &Catalog,
    col: ColRef,
    lit: &ParsedLiteral,
    span: Option<Span>,
) {
    let Ok(def) = catalog.def(col.table) else {
        return;
    };
    let col_ty = def.schema.column(col.column).dtype;
    let lit_ty = match lit {
        ParsedLiteral::Int(_) => DataType::Int,
        ParsedLiteral::Double(_) => DataType::Double,
        ParsedLiteral::Str(_) => DataType::Str,
    };
    let compatible = col_ty == lit_ty || (col_ty.is_numeric() && lit_ty.is_numeric());
    if !compatible {
        report.push(
            Diagnostic::new(
                Code::Md015,
                format!(
                    "cannot compare {} ({col_ty}) with a {lit_ty} literal",
                    col.display(catalog)
                ),
            )
            .with_span(span),
        );
    }
}

fn table_names(catalog: &Catalog) -> String {
    let mut names: Vec<String> = catalog
        .table_ids()
        .filter_map(|t| catalog.def(t).ok().map(|d| d.name.clone()))
        .collect();
    names.sort_unstable();
    names.join(", ")
}

fn column_names(catalog: &Catalog, table: TableId) -> String {
    catalog
        .def(table)
        .map(|d| {
            d.schema
                .columns()
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        })
        .unwrap_or_default()
}

pub(crate) fn select_span(parsed: &ParsedView, item: usize) -> Option<Span> {
    parsed.spans.select.get(item).copied()
}

pub(crate) fn from_span(parsed: &ParsedView, i: usize) -> Option<Span> {
    parsed.spans.from.get(i).copied()
}

pub(crate) fn cond_span(parsed: &ParsedView, i: usize) -> Option<Span> {
    parsed.spans.conditions.get(i).copied()
}

pub(crate) fn statement_span(parsed: &ParsedView) -> Option<Span> {
    Some(parsed.spans.statement)
}

//! The diagnostic model: stable codes, severities, and the check report.
//!
//! Codes are grouped by pass: `MD00x` front end, `MD01x` name resolution,
//! `MD02x` join-graph well-formedness, `MD03x` aggregate classification and
//! exposure, `MD04x`/`MD05x` plan-audit lints, `MD06x` scheduler-ordering
//! checks, `MD07x` fault-domain configuration checks. Codes are
//! append-only: a published code never changes meaning, so scripts may
//! match on them.

use md_sql::Span;

/// Diagnostic severity. Errors make a definition unusable (`derive` would
/// fail or silently violate a paper precondition); warnings flag definitions
/// that work but forgo minimization opportunities; notes explain plan
/// consequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The definition violates a hard precondition and is rejected in
    /// strict mode.
    Error,
    /// The definition is accepted but suboptimal or fragile.
    Warning,
    /// Informational plan-audit finding.
    Note,
}

impl Severity {
    /// Lowercase name as rendered (`error` / `warning` / `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Lexical error in the SQL text.
    Md001,
    /// Syntax error in the SQL text.
    Md002,
    /// Unknown or unbound table reference.
    Md010,
    /// Table listed twice in `FROM` (self-join, outside the GPSJ class).
    Md011,
    /// Unknown column.
    Md012,
    /// Ambiguous unqualified column.
    Md013,
    /// Select list and `GROUP BY` disagree.
    Md014,
    /// Invalid condition (literal-only, type mismatch, bad `HAVING`).
    Md015,
    /// Duplicate output column alias.
    Md016,
    /// Join condition is not on the key of either table.
    Md020,
    /// A table is reached by more than one join path.
    Md021,
    /// The join graph contains a cycle.
    Md022,
    /// The join graph is disconnected.
    Md023,
    /// Superfluous aggregate (argument is a group-by attribute).
    Md024,
    /// `MIN`/`MAX` aggregate is not completely self-maintainable.
    Md030,
    /// `DISTINCT` aggregate is not completely self-maintainable.
    Md031,
    /// `SUM`/`AVG` without a `COUNT(*)` companion.
    Md032,
    /// Join edge without a declared foreign key.
    Md033,
    /// Condition column exposed to updates under the table's contract.
    Md034,
    /// Auxiliary view materialized only because of exposed updates.
    Md040,
    /// Root auxiliary view degenerates to a PSJ view (no compression).
    Md041,
    /// `AVG` is maintained via the `SUM`/`COUNT` rewrite.
    Md050,
    /// Scheduler commits an engine before the batch's WAL append.
    Md060,
    /// WAL LSNs are not strictly increasing per table.
    Md061,
    /// Two threads acquire the same engine pair in opposite orders.
    Md062,
    /// Prepared engine neither committed nor rolled back by batch end.
    Md063,
    /// Auto-repair enabled on a summary whose root auxiliary view was
    /// eliminated — the reconstruction query cannot rebuild it.
    Md070,
    /// Quarantine enabled but the retry policy gives transient I/O
    /// faults a single attempt.
    Md071,
    /// Dead-letter store capacity is zero: every escalated batch is
    /// dropped un-inspected.
    Md072,
    /// Quarantine enabled without a change log: queued deltas of a
    /// quarantined summary are not durable.
    Md073,
}

impl Code {
    /// Every code the analyzer can emit, in ascending order.
    pub const ALL: [Code; 30] = [
        Code::Md001,
        Code::Md002,
        Code::Md010,
        Code::Md011,
        Code::Md012,
        Code::Md013,
        Code::Md014,
        Code::Md015,
        Code::Md016,
        Code::Md020,
        Code::Md021,
        Code::Md022,
        Code::Md023,
        Code::Md024,
        Code::Md030,
        Code::Md031,
        Code::Md032,
        Code::Md033,
        Code::Md034,
        Code::Md040,
        Code::Md041,
        Code::Md050,
        Code::Md060,
        Code::Md061,
        Code::Md062,
        Code::Md063,
        Code::Md070,
        Code::Md071,
        Code::Md072,
        Code::Md073,
    ];

    /// The stable code string, e.g. `"MD020"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Md001 => "MD001",
            Code::Md002 => "MD002",
            Code::Md010 => "MD010",
            Code::Md011 => "MD011",
            Code::Md012 => "MD012",
            Code::Md013 => "MD013",
            Code::Md014 => "MD014",
            Code::Md015 => "MD015",
            Code::Md016 => "MD016",
            Code::Md020 => "MD020",
            Code::Md021 => "MD021",
            Code::Md022 => "MD022",
            Code::Md023 => "MD023",
            Code::Md024 => "MD024",
            Code::Md030 => "MD030",
            Code::Md031 => "MD031",
            Code::Md032 => "MD032",
            Code::Md033 => "MD033",
            Code::Md034 => "MD034",
            Code::Md040 => "MD040",
            Code::Md041 => "MD041",
            Code::Md050 => "MD050",
            Code::Md060 => "MD060",
            Code::Md061 => "MD061",
            Code::Md062 => "MD062",
            Code::Md063 => "MD063",
            Code::Md070 => "MD070",
            Code::Md071 => "MD071",
            Code::Md072 => "MD072",
            Code::Md073 => "MD073",
        }
    }

    /// `true` for the scheduler-ordering codes (`MD060`–`MD063`), which
    /// are emitted by [`check_schedule`](crate::check_schedule) over a
    /// [`SchedModel`](crate::SchedModel) rather than by the SQL passes.
    pub fn is_schedule(self) -> bool {
        matches!(self, Code::Md060 | Code::Md061 | Code::Md062 | Code::Md063)
    }

    /// `true` for the fault-domain codes (`MD070`–`MD073`), which are
    /// emitted by [`check_fault_domains`](crate::check_fault_domains)
    /// over a [`FaultDomainModel`](crate::FaultDomainModel) rather than
    /// by the SQL passes.
    pub fn is_fault_domain(self) -> bool {
        matches!(self, Code::Md070 | Code::Md071 | Code::Md072 | Code::Md073)
    }

    /// The fixed severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::Md001
            | Code::Md002
            | Code::Md010
            | Code::Md011
            | Code::Md012
            | Code::Md013
            | Code::Md014
            | Code::Md015
            | Code::Md016
            | Code::Md020
            | Code::Md021
            | Code::Md022
            | Code::Md023
            | Code::Md024
            | Code::Md060
            | Code::Md061
            | Code::Md062
            | Code::Md070 => Severity::Error,
            Code::Md030
            | Code::Md031
            | Code::Md032
            | Code::Md033
            | Code::Md034
            | Code::Md063
            | Code::Md071
            | Code::Md072
            | Code::Md073 => Severity::Warning,
            Code::Md040 | Code::Md041 | Code::Md050 => Severity::Note,
        }
    }

    /// One-line description, for `--explain`-style listings and docs.
    pub fn title(self) -> &'static str {
        match self {
            Code::Md001 => "lexical error",
            Code::Md002 => "syntax error",
            Code::Md010 => "unknown or unbound table",
            Code::Md011 => "table listed twice in FROM",
            Code::Md012 => "unknown column",
            Code::Md013 => "ambiguous column",
            Code::Md014 => "select list / GROUP BY mismatch",
            Code::Md015 => "invalid condition",
            Code::Md016 => "duplicate output alias",
            Code::Md020 => "non-key join",
            Code::Md021 => "multiple join paths into a table",
            Code::Md022 => "join-graph cycle",
            Code::Md023 => "disconnected join graph",
            Code::Md024 => "superfluous aggregate",
            Code::Md030 => "MIN/MAX is not completely self-maintainable",
            Code::Md031 => "DISTINCT aggregate is not completely self-maintainable",
            Code::Md032 => "SUM/AVG without COUNT(*) companion",
            Code::Md033 => "join edge without declared foreign key",
            Code::Md034 => "condition column exposed to updates",
            Code::Md040 => "auxiliary view eliminable under a tighter contract",
            Code::Md041 => "root auxiliary view degenerates to PSJ",
            Code::Md050 => "AVG maintained via SUM/COUNT rewrite",
            Code::Md060 => "commit before WAL append",
            Code::Md061 => "per-table WAL LSN regression",
            Code::Md062 => "cross-summary lock-order inversion",
            Code::Md063 => "prepared engine leaked past batch end",
            Code::Md070 => "auto-repair cannot rebuild a root-omitted summary",
            Code::Md071 => "quarantine with a single-attempt retry policy",
            Code::Md072 => "zero-capacity dead-letter store",
            Code::Md073 => "quarantine without a durable change log",
        }
    }
}

/// One finding: a stable code, a message, and an optional source span with
/// secondary text (label under the carets, `help:` and `note:` lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// The severity (always `code.severity()`).
    pub severity: Severity,
    /// Primary message.
    pub message: String,
    /// The offending source range, when the input was SQL text.
    pub span: Option<Span>,
    /// Short text rendered under the caret underline.
    pub label: Option<String>,
    /// `= help:` lines.
    pub help: Vec<String>,
    /// `= note:` lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's fixed severity and no span.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span: None,
            label: None,
            help: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attaches a source span (no-op for `None`, which keeps call sites
    /// uniform: clause spans are themselves optional).
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Attaches the caret label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Appends a `help:` line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help.push(help.into());
        self
    }

    /// Appends a `note:` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// The result of checking one view definition: the diagnostics plus the
/// source they point into, so the report renders itself.
#[derive(Debug, Clone)]
pub struct CheckReport {
    origin: String,
    view: Option<String>,
    source: Option<String>,
    diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    pub(crate) fn new(origin: impl Into<String>, source: Option<String>) -> Self {
        CheckReport {
            origin: origin.into(),
            view: None,
            source,
            diagnostics: Vec::new(),
        }
    }

    pub(crate) fn set_view(&mut self, name: Option<String>) {
        self.view = name;
    }

    /// Records a diagnostic, dropping exact duplicates (same code, span and
    /// message) so one underlying defect is reported once.
    pub(crate) fn push(&mut self, d: Diagnostic) {
        let dup = self
            .diagnostics
            .iter()
            .any(|e| e.code == d.code && e.span == d.span && e.message == d.message);
        if !dup {
            self.diagnostics.push(d);
        }
    }

    /// Where the checked SQL came from (a file name, or `<sql>`).
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The view name, when the statement declared one.
    pub fn view_name(&self) -> Option<&str> {
        self.view.as_deref()
    }

    /// The checked source text, when the input was SQL.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// All diagnostics, in pass order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when nothing was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one error-level diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-level diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-level diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-level diagnostics.
    pub fn note_count(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(strs, sorted, "Code::ALL must be unique and ascending");
    }

    #[test]
    fn severity_matches_code_bands() {
        assert_eq!(Code::Md001.severity(), Severity::Error);
        assert_eq!(Code::Md024.severity(), Severity::Error);
        assert_eq!(Code::Md030.severity(), Severity::Warning);
        assert_eq!(Code::Md034.severity(), Severity::Warning);
        assert_eq!(Code::Md040.severity(), Severity::Note);
        assert_eq!(Code::Md050.severity(), Severity::Note);
    }

    #[test]
    fn duplicate_diagnostics_are_dropped() {
        let mut r = CheckReport::new("<sql>", None);
        r.push(Diagnostic::new(Code::Md010, "unknown table 'x'"));
        r.push(Diagnostic::new(Code::Md010, "unknown table 'x'"));
        r.push(Diagnostic::new(Code::Md010, "unknown table 'y'"));
        assert_eq!(r.diagnostics().len(), 2);
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 2);
    }
}

//! Pass 3 — join-graph well-formedness (`MD020`–`MD023`, `MD033`).
//!
//! Rebuilds the extended join graph (paper Definition 2) from the resolved
//! conditions, so structural defects are reported with the span of the
//! offending join condition *before* `GpsjView::validate` would reject the
//! view without provenance. Mirrors `core::join_graph::ExtendedJoinGraph::
//! build`: edges oriented foreign key → key, at most one incoming edge per
//! table, exactly one root, full reachability.

use std::collections::BTreeSet;

use md_algebra::{CmpOp, ColRef};
use md_relation::{Catalog, TableId};
use md_sql::ParsedView;

use crate::diag::{CheckReport, Code, Diagnostic};
use crate::resolve_pass::{cond_span, from_span, statement_span, ROperand, Resolved};

/// A join edge with the index of the condition that induced it.
struct Edge {
    from: ColRef,
    to: ColRef,
    cond: usize,
}

/// Runs the pass. Returns `false` when a structural error was found (the
/// aggregate/exposure/plan passes need a valid tree).
pub(crate) fn run(
    report: &mut CheckReport,
    parsed: &ParsedView,
    resolved: &Resolved,
    catalog: &Catalog,
) -> bool {
    let errors_before = report.error_count();
    let name_of = |t: TableId| -> String {
        catalog
            .def(t)
            .map(|d| d.name.clone())
            .unwrap_or_else(|_| t.to_string())
    };

    // Orient each cross-table condition into an edge (MD020 otherwise).
    let mut edges: Vec<Edge> = Vec::new();
    for rc in &resolved.conds {
        let (ROperand::Col(l), ROperand::Col(r)) = (rc.left, rc.right) else {
            continue;
        };
        if l.table == r.table {
            continue; // local condition, not a join
        }
        let span = cond_span(parsed, rc.index);
        if rc.op != CmpOp::Eq {
            report.push(
                Diagnostic::new(Code::Md020, "join conditions must be equalities")
                    .with_span(span)
                    .with_label(format!("'{}' cannot express a key/foreign-key join", rc.op)),
            );
            continue;
        }
        let l_is_key = catalog
            .def(l.table)
            .map(|d| d.key_col == l.column)
            .unwrap_or(false);
        let r_is_key = catalog
            .def(r.table)
            .map(|d| d.key_col == r.column)
            .unwrap_or(false);
        // Same tie-break as `Condition::join_pair`: the right side wins the
        // key role when both sides are keys.
        let (from, to) = if r_is_key {
            (l, r)
        } else if l_is_key {
            (r, l)
        } else {
            report.push(
                Diagnostic::new(
                    Code::Md020,
                    format!(
                        "join between {} and {} is not on a key",
                        l.display(catalog),
                        r.display(catalog)
                    ),
                )
                .with_span(span)
                .with_label("neither side is its table's key")
                .with_help(
                    "GPSJ joins must equate a foreign key with the referenced table's key \
                     (paper Definition 2)",
                ),
            );
            continue;
        };
        if !edges.iter().any(|e| e.from == from && e.to == to) {
            edges.push(Edge {
                from,
                to,
                cond: rc.index,
            });
        }
    }
    if report.error_count() > errors_before {
        return false;
    }

    // At most one incoming edge per table (MD021).
    for &t in &resolved.tables {
        let incoming: Vec<&Edge> = edges.iter().filter(|e| e.to.table == t).collect();
        if incoming.len() > 1 {
            let paths: Vec<String> = incoming
                .iter()
                .map(|e| format!("{} = {}", e.from.display(catalog), e.to.display(catalog)))
                .collect();
            report.push(
                Diagnostic::new(
                    Code::Md021,
                    format!(
                        "table '{}' is reached by {} join paths",
                        name_of(t),
                        incoming.len()
                    ),
                )
                .with_span(cond_span(parsed, incoming[1].cond))
                .with_label("second join path into the table")
                .with_note(format!("join paths: {}", paths.join("; ")))
                .with_help("the extended join graph must be a tree (at most one parent per table)"),
            );
        }
    }
    if report.error_count() > errors_before {
        return false;
    }

    // Exactly one root (MD022 no root = cycle, MD023 several = disconnected).
    let roots: Vec<TableId> = resolved
        .tables
        .iter()
        .copied()
        .filter(|&t| !edges.iter().any(|e| e.to.table == t))
        .collect();
    match roots.as_slice() {
        [root] => {
            // Reachability from the root (a cycle hanging off the tree has
            // one incoming edge everywhere yet is unreachable).
            let mut reached = BTreeSet::new();
            let mut stack = vec![*root];
            while let Some(t) = stack.pop() {
                if reached.insert(t) {
                    for e in edges.iter().filter(|e| e.from.table == t) {
                        stack.push(e.to.table);
                    }
                }
            }
            let unreached: Vec<TableId> = resolved
                .tables
                .iter()
                .copied()
                .filter(|t| !reached.contains(t))
                .collect();
            if let Some(&first) = unreached.first() {
                let idx = resolved.tables.iter().position(|&t| t == first);
                report.push(
                    Diagnostic::new(
                        Code::Md022,
                        format!(
                            "the join graph contains a cycle: {} cannot be reached from root '{}'",
                            unreached
                                .iter()
                                .map(|&t| format!("'{}'", name_of(t)))
                                .collect::<Vec<_>>()
                                .join(", "),
                            name_of(*root)
                        ),
                    )
                    .with_span(idx.and_then(|i| from_span(parsed, i))),
                );
            }
        }
        [] => {
            report.push(
                Diagnostic::new(
                    Code::Md022,
                    "every table has an incoming join edge: the join graph contains a cycle",
                )
                .with_span(statement_span(parsed))
                .with_help("the extended join graph must be a tree rooted at the fact table"),
            );
        }
        many => {
            let names: Vec<String> = many.iter().map(|&t| format!("'{}'", name_of(t))).collect();
            let second = resolved.tables.iter().position(|&t| t == many[1]);
            report.push(
                Diagnostic::new(Code::Md023, "the join graph is disconnected")
                    .with_span(second.and_then(|i| from_span(parsed, i)))
                    .with_label("not joined to the rest of the view")
                    .with_note(format!("candidate roots: {}", names.join(", ")))
                    .with_help("add a key/foreign-key join condition connecting the components"),
            );
        }
    }
    if report.error_count() > errors_before {
        return false;
    }

    // MD033: edges without declared referential integrity can never become
    // dependency edges (Section 2.2), so they block every join reduction.
    for e in &edges {
        if catalog
            .foreign_key(e.from.table, e.from.column, e.to.table)
            .is_none()
        {
            report.push(
                Diagnostic::new(
                    Code::Md033,
                    format!(
                        "join from {} to '{}' has no declared foreign key",
                        e.from.display(catalog),
                        name_of(e.to.table)
                    ),
                )
                .with_span(cond_span(parsed, e.cond))
                .with_note(
                    "without referential integrity this edge is never a dependency \
                     (Section 2.2), so auxiliary views on this path cannot be reduced or omitted",
                )
                .with_help("declare the foreign key in the catalog (Catalog::add_foreign_key)"),
            );
        }
    }
    true
}

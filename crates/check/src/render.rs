//! Rustc-style plain-text rendering of a [`CheckReport`].
//!
//! ```text
//! error[MD012]: unknown column 'nope' in table 'sale'
//!  --> bad.sql:1:8
//!   |
//! 1 | SELECT sale.nope, COUNT(*) AS n FROM sale
//!   |        ^^^^^^^^^ no such column
//!   = help: columns of 'sale': id, timeid, productid, storeid, price
//! ```
//!
//! The output is deterministic (golden-file tested) and ASCII-only.

use std::fmt::Write as _;

use md_sql::Span;

use crate::diag::{CheckReport, Diagnostic};

impl CheckReport {
    /// Renders every diagnostic plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in self.diagnostics() {
            render_one(&mut out, d, self.origin(), self.source());
            out.push('\n');
        }
        if self.is_clean() {
            let _ = writeln!(out, "check passed: no diagnostics");
        } else {
            let _ = writeln!(
                out,
                "check finished: {} error(s), {} warning(s), {} note(s)",
                self.error_count(),
                self.warning_count(),
                self.note_count()
            );
        }
        out
    }
}

fn render_one(out: &mut String, d: &Diagnostic, origin: &str, source: Option<&str>) {
    let _ = writeln!(
        out,
        "{}[{}]: {}",
        d.severity.as_str(),
        d.code.as_str(),
        d.message
    );
    let snippet = d
        .span
        .and_then(|span| source.map(|src| (span, src)))
        .and_then(|(span, src)| locate(src, span));
    let gutter = match &snippet {
        Some(loc) => loc.line_no.to_string().len(),
        None => 1,
    };
    if let Some(loc) = &snippet {
        let _ = writeln!(
            out,
            "{:gutter$}--> {origin}:{}:{}",
            "", loc.line_no, loc.col
        );
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{:>gutter$} | {}", loc.line_no, loc.text);
        let carets = "^".repeat(loc.width.max(1));
        match &d.label {
            Some(label) => {
                let _ = writeln!(
                    out,
                    "{:gutter$} | {:pad$}{carets} {label}",
                    "",
                    "",
                    pad = loc.col - 1
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:gutter$} | {:pad$}{carets}",
                    "",
                    "",
                    pad = loc.col - 1
                );
            }
        }
    }
    for h in &d.help {
        let _ = writeln!(out, "{:gutter$} = help: {h}", "");
    }
    for n in &d.notes {
        let _ = writeln!(out, "{:gutter$} = note: {n}", "");
    }
}

struct Located<'a> {
    /// 1-based line number of the span start.
    line_no: usize,
    /// 1-based column (byte) of the span start within the line.
    col: usize,
    /// The full source line, without its newline.
    text: &'a str,
    /// Underline width, clipped to the end of the line.
    width: usize,
}

/// Finds the line containing `span.start`. Returns `None` for spans outside
/// the source (defensive: spans always come from the same text).
fn locate(source: &str, span: Span) -> Option<Located<'_>> {
    if span.start > source.len() {
        return None;
    }
    let mut line_start = 0;
    let mut line_no = 1;
    for (i, b) in source.bytes().enumerate() {
        if i >= span.start {
            break;
        }
        if b == b'\n' {
            line_start = i + 1;
            line_no += 1;
        }
    }
    let line_end = source[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(source.len());
    let col = span.start - line_start + 1;
    let width = span.end.min(line_end).saturating_sub(span.start);
    Some(Located {
        line_no,
        col,
        text: &source[line_start..line_end],
        width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    #[test]
    fn renders_span_with_carets_and_label() {
        let src = "SELECT sale.nope FROM sale";
        let mut r = CheckReport::new("bad.sql", Some(src.to_owned()));
        r.push(
            Diagnostic::new(Code::Md012, "unknown column 'nope' in table 'sale'")
                .with_span(Some(Span::new(7, 16)))
                .with_label("no such column")
                .with_help("columns of 'sale': id"),
        );
        let text = r.render();
        let expected = [
            "error[MD012]: unknown column 'nope' in table 'sale'",
            " --> bad.sql:1:8",
            "  |",
            "1 | SELECT sale.nope FROM sale",
            "  |        ^^^^^^^^^ no such column",
            "  = help: columns of 'sale': id",
            "",
            "check finished: 1 error(s), 0 warning(s), 0 note(s)",
            "",
        ]
        .join("\n");
        assert_eq!(text, expected);
    }

    #[test]
    fn renders_multi_line_source_with_correct_line_numbers() {
        let src = "SELECT time.month, COUNT(*) AS n\nFROM time\nGROUP BY time.month";
        let mut r = CheckReport::new("v.sql", Some(src.to_owned()));
        // Span of "time" on line 2.
        r.push(Diagnostic::new(Code::Md010, "msg").with_span(Some(Span::new(38, 42))));
        let text = r.render();
        assert!(text.contains("--> v.sql:2:6"), "{text}");
        assert!(text.contains("2 | FROM time"), "{text}");
    }

    #[test]
    fn spanless_diagnostics_render_without_snippet() {
        let mut r = CheckReport::new("<sql>", None);
        r.push(Diagnostic::new(Code::Md022, "cycle").with_note("a note"));
        let text = r.render();
        let expected = [
            "error[MD022]: cycle",
            "  = note: a note",
            "",
            "check finished: 1 error(s), 0 warning(s), 0 note(s)",
            "",
        ]
        .join("\n");
        assert_eq!(text, expected);
    }

    #[test]
    fn clean_report() {
        let r = CheckReport::new("<sql>", None);
        assert_eq!(r.render(), "check passed: no diagnostics\n");
    }

    #[test]
    fn underline_is_clipped_to_the_line() {
        let src = "SELECT x\nFROM t";
        let mut r = CheckReport::new("f", Some(src.to_owned()));
        // Statement-wide span: carets must stop at the end of line 1.
        r.push(Diagnostic::new(Code::Md015, "m").with_span(Some(Span::new(0, src.len()))));
        let text = r.render();
        assert!(text.contains("| ^^^^^^^^\n"), "{text}");
    }
}

//! Hand-rolled JSON emission for [`CheckReport`] (the workspace has no
//! serde; the format is small, deterministic, and golden-file tested).
//!
//! Field order is fixed; spans are flattened into `line`/`col` (1-based)
//! plus the raw byte offsets, so editors can use either.

use std::fmt::Write as _;

use crate::diag::{CheckReport, Diagnostic};

impl CheckReport {
    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"origin\": {},", quote(self.origin()));
        let _ = writeln!(
            out,
            "  \"view\": {},",
            self.view_name().map(quote).unwrap_or_else(|| "null".into())
        );
        let _ = writeln!(out, "  \"errors\": {},", self.error_count());
        let _ = writeln!(out, "  \"warnings\": {},", self.warning_count());
        let _ = writeln!(out, "  \"notes\": {},", self.note_count());
        if self.diagnostics().is_empty() {
            out.push_str("  \"diagnostics\": []\n");
        } else {
            out.push_str("  \"diagnostics\": [\n");
            let last = self.diagnostics().len() - 1;
            for (i, d) in self.diagnostics().iter().enumerate() {
                diagnostic_json(&mut out, d, self.source());
                out.push_str(if i == last { "\n" } else { ",\n" });
            }
            out.push_str("  ]\n");
        }
        out.push('}');
        out
    }
}

fn diagnostic_json(out: &mut String, d: &Diagnostic, source: Option<&str>) {
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"code\": {},", quote(d.code.as_str()));
    let _ = writeln!(out, "      \"severity\": {},", quote(d.severity.as_str()));
    let _ = writeln!(out, "      \"message\": {},", quote(&d.message));
    match d.span {
        Some(span) => {
            let (line, col) = source
                .map(|src| line_col(src, span.start))
                .unwrap_or((1, span.start + 1));
            let _ = writeln!(out, "      \"line\": {line},");
            let _ = writeln!(out, "      \"col\": {col},");
            let _ = writeln!(out, "      \"start\": {},", span.start);
            let _ = writeln!(out, "      \"end\": {},", span.end);
        }
        None => {
            out.push_str("      \"line\": null,\n");
            out.push_str("      \"col\": null,\n");
            out.push_str("      \"start\": null,\n");
            out.push_str("      \"end\": null,\n");
        }
    }
    let _ = writeln!(
        out,
        "      \"label\": {},",
        d.label
            .as_deref()
            .map(quote)
            .unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(out, "      \"help\": {},", string_array(&d.help));
    let _ = writeln!(out, "      \"notes\": {}", string_array(&d.notes));
    out.push_str("    }");
}

fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| quote(s)).collect();
    format!("[{}]", quoted.join(", "))
}

/// 1-based line/column of a byte offset.
fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut line_start = 0;
    for (i, b) in source.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    (line, offset - line_start + 1)
}

/// JSON string escaping (quotes, backslashes, control characters).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic};
    use md_sql::Span;

    #[test]
    fn empty_report_serializes() {
        let r = CheckReport::new("<sql>", None);
        let j = r.to_json();
        assert!(j.contains("\"errors\": 0"));
        assert!(j.contains("\"diagnostics\": []"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn span_becomes_line_col_and_offsets() {
        let src = "SELECT x\nFROM nope";
        let mut r = CheckReport::new("f.sql", Some(src.to_owned()));
        r.push(
            Diagnostic::new(Code::Md010, "unknown table 'nope' in FROM")
                .with_span(Some(Span::new(14, 18))),
        );
        let j = r.to_json();
        assert!(j.contains("\"line\": 2"), "{j}");
        assert!(j.contains("\"col\": 6"), "{j}");
        assert!(j.contains("\"start\": 14"), "{j}");
        assert!(j.contains("\"end\": 18"), "{j}");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}

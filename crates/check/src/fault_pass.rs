//! The `MD07x` fault-domain pass: static checks over a warehouse's
//! fault-isolation configuration.
//!
//! Like the `MD06x` scheduler pass, this pass does not parse SQL — it
//! checks an abstract [`FaultDomainModel`] that the warehouse describes
//! itself into (`Warehouse::fault_domain_model`). The checks catch
//! configurations whose failure paths cannot work *before* any fault
//! happens: auto-repair on a summary that cannot be rebuilt from its
//! auxiliary views, quarantine whose queued deltas would not survive a
//! crash, retry/dead-letter settings that defeat their purpose.

use crate::diag::{CheckReport, Code, Diagnostic};

/// One summary view as the fault-domain pass sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDomainSummary {
    /// The summary view's name.
    pub name: String,
    /// Whether Algorithm 3.2 eliminated the root auxiliary view. A
    /// root-omitted summary has no reconstruction query: repair can only
    /// remap dimension-derived state, not rebuild root aggregates.
    pub root_omitted: bool,
}

/// An abstract description of a warehouse's fault-isolation
/// configuration, checked by [`check_fault_domains`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultDomainModel {
    /// Whether the durable change log is enabled.
    pub wal_enabled: bool,
    /// Whether per-summary quarantine is enabled.
    pub quarantine: bool,
    /// Whether quarantined summaries are repaired automatically after
    /// each batch.
    pub auto_repair: bool,
    /// Total attempts (initial + retries) the I/O retry policy allows.
    pub retry_attempts: u32,
    /// Dead-letter store capacity; `None` means unbounded.
    pub dead_letter_capacity: Option<usize>,
    /// The registered summaries.
    pub summaries: Vec<FaultDomainSummary>,
}

/// Runs the `MD07x` fault-domain checks over `model`.
pub fn check_fault_domains(model: &FaultDomainModel) -> CheckReport {
    let mut report = CheckReport::new("<fault-domains>", None);

    if model.auto_repair {
        for s in &model.summaries {
            if s.root_omitted {
                report.push(
                    Diagnostic::new(
                        Code::Md070,
                        format!(
                            "auto-repair is enabled, but summary '{}' omitted its root \
                             auxiliary view — the reconstruction query cannot rebuild it",
                            s.name
                        ),
                    )
                    .with_help(
                        "register the view under a contract that materializes the root \
                         auxiliary view, or repair it manually from a source recompute",
                    )
                    .with_note(
                        "root-omitted repair can only remap dimension-derived state; \
                         root-sourced aggregate damage is unrecoverable without sources",
                    ),
                );
            }
        }
    }

    if model.quarantine && model.retry_attempts <= 1 {
        report.push(
            Diagnostic::new(
                Code::Md071,
                "quarantine is enabled but the retry policy allows a single attempt — \
                 every transient I/O fault escalates immediately",
            )
            .with_help("allow at least one retry so heal-on-retry faults (torn writes) clear"),
        );
    }

    if model.dead_letter_capacity == Some(0) {
        report.push(
            Diagnostic::new(
                Code::Md072,
                "dead-letter store capacity is 0: every escalated batch is dropped \
                 before an operator can inspect it",
            )
            .with_help("use a small positive capacity, or leave the store unbounded"),
        );
    }

    if model.quarantine && !model.wal_enabled {
        report.push(
            Diagnostic::new(
                Code::Md073,
                "quarantine is enabled without the change log — deltas queued for a \
                 quarantined summary do not survive a crash",
            )
            .with_help("enable the WAL so queued deltas replay from the log on recovery"),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_model() -> FaultDomainModel {
        FaultDomainModel {
            wal_enabled: true,
            quarantine: true,
            auto_repair: true,
            retry_attempts: 4,
            dead_letter_capacity: None,
            summaries: vec![FaultDomainSummary {
                name: "product_sales".into(),
                root_omitted: false,
            }],
        }
    }

    #[test]
    fn healthy_configuration_is_clean() {
        assert!(check_fault_domains(&healthy_model()).is_clean());
    }

    #[test]
    fn md070_flags_auto_repair_on_root_omitted_summary() {
        let mut m = healthy_model();
        m.summaries.push(FaultDomainSummary {
            name: "daily_product".into(),
            root_omitted: true,
        });
        let report = check_fault_domains(&m);
        assert!(report.has_errors());
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, Code::Md070);
        assert!(d.message.contains("daily_product"));

        // Without auto-repair the same summary is fine: manual repair
        // paths are the operator's call.
        m.auto_repair = false;
        assert!(check_fault_domains(&m).is_clean());
    }

    #[test]
    fn md071_flags_single_attempt_retry_under_quarantine() {
        let mut m = healthy_model();
        m.retry_attempts = 1;
        let report = check_fault_domains(&m);
        assert_eq!(report.diagnostics()[0].code, Code::Md071);
        m.quarantine = false;
        m.auto_repair = false;
        assert!(check_fault_domains(&m).is_clean());
    }

    #[test]
    fn md072_flags_zero_capacity_dead_letters() {
        let mut m = healthy_model();
        m.dead_letter_capacity = Some(0);
        let report = check_fault_domains(&m);
        assert_eq!(report.diagnostics()[0].code, Code::Md072);
        m.dead_letter_capacity = Some(16);
        assert!(check_fault_domains(&m).is_clean());
    }

    #[test]
    fn md073_flags_quarantine_without_wal() {
        let mut m = healthy_model();
        m.wal_enabled = false;
        let report = check_fault_domains(&m);
        assert_eq!(report.diagnostics()[0].code, Code::Md073);
    }
}

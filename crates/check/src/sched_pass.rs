//! Pass 7 — scheduler-ordering analysis (`MD060`–`MD063`).
//!
//! The dynamic explorer in `md-race` replays concrete interleavings of
//! the batch scheduler; this pass checks the *ordering invariants* of a
//! schedule statically, over an abstract [`SchedModel`], so they can be
//! verified even on plans the explorer can't reach — hand-written
//! schedules, traces recorded in production, or the warehouse's own
//! description of what it is about to run
//! (`Warehouse::schedule_model`).
//!
//! The model is a list of [`SchedStep`]s. Steps of the *same* thread are
//! ordered as listed (program order); steps of different threads are
//! unordered except through the batch markers, so every finding below is
//! a violation on *every* interleaving consistent with the model, not
//! just on one:
//!
//! * **MD060** — within a batch, an engine commit precedes the batch's
//!   WAL append in its thread's program order (or the log is enabled and
//!   the batch commits without appending at all). A crash between the
//!   two loses committed changes.
//! * **MD061** — a table's WAL LSNs are not strictly increasing in
//!   append order. Recovery replays frames in log order; a regression
//!   reorders committed batches.
//! * **MD062** — two threads acquire the same pair of engines in
//!   opposite orders (more generally: the engine-acquisition precedence
//!   graph has a cycle), the classic deadlock recipe.
//! * **MD063** — an engine is prepared in a batch but neither committed
//!   nor rolled back by the batch's end: a leaked transaction that
//!   blocks every later batch on that engine.

use std::collections::BTreeMap;

use crate::diag::{CheckReport, Code, Diagnostic};

/// One scheduling operation in a [`SchedModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedModelOp {
    /// A batch begins.
    BatchStart,
    /// The thread takes exclusive access to an engine (and holds it
    /// until the matching [`SchedModelOp::Release`]).
    Acquire {
        /// The engine (summary) name.
        engine: String,
    },
    /// The thread releases an engine.
    Release {
        /// The engine (summary) name.
        engine: String,
    },
    /// The thread runs an engine's prepare phase.
    Prepare {
        /// The engine (summary) name.
        engine: String,
    },
    /// The thread appends one table frame to the change log.
    WalAppend {
        /// The table name.
        table: String,
        /// The frame's log sequence number.
        lsn: u64,
    },
    /// The thread commits a prepared engine.
    Commit {
        /// The engine (summary) name.
        engine: String,
    },
    /// The thread rolls a prepared engine back.
    Rollback {
        /// The engine (summary) name.
        engine: String,
    },
    /// The batch ends.
    BatchEnd,
}

/// One step: which thread performs which operation. Thread `0` is the
/// coordinator by convention; worker tasks are `1..`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedStep {
    /// The performing thread.
    pub thread: usize,
    /// The operation.
    pub op: SchedModelOp,
}

impl SchedStep {
    /// Shorthand constructor.
    pub fn new(thread: usize, op: SchedModelOp) -> Self {
        SchedStep { thread, op }
    }
}

/// An abstract schedule of the batch scheduler: what each thread does, in
/// per-thread program order. Build one by hand, record one from an
/// md-race trace, or ask `Warehouse::schedule_model` to describe the
/// schedule it would run for a batch.
#[derive(Debug, Clone, Default)]
pub struct SchedModel {
    /// Whether the durable change log is enabled. When `false`, MD060's
    /// missing-append arm and MD061 are vacuous.
    pub wal_enabled: bool,
    /// The steps, in per-thread program order (steps of different
    /// threads may be listed in any order).
    pub steps: Vec<SchedStep>,
}

impl SchedModel {
    /// An empty model with the log enabled.
    pub fn new() -> Self {
        SchedModel {
            wal_enabled: true,
            steps: Vec::new(),
        }
    }

    /// Appends a step.
    pub fn push(&mut self, thread: usize, op: SchedModelOp) {
        self.steps.push(SchedStep::new(thread, op));
    }
}

/// Checks the ordering invariants of a schedule model and reports every
/// violation as an `MD06x` diagnostic. The origin of the returned report
/// is `<schedule>`.
pub fn check_schedule(model: &SchedModel) -> CheckReport {
    let mut report = CheckReport::new("<schedule>", None);
    check_batches(&mut report, model);
    check_lsns(&mut report, model);
    check_lock_order(&mut report, model);
    report
}

/// MD060 + MD063: per-batch commit/append ordering and transaction
/// hygiene. Batches are delimited by `BatchStart`/`BatchEnd` markers;
/// steps outside any marker belong to one implicit batch.
fn check_batches(report: &mut CheckReport, model: &SchedModel) {
    // Split the step list into batches. Markers may come from any
    // thread; the scheduler emits them from the coordinator.
    let mut batches: Vec<&[SchedStep]> = Vec::new();
    let mut start = 0usize;
    let mut saw_marker = false;
    for (i, step) in model.steps.iter().enumerate() {
        match step.op {
            SchedModelOp::BatchStart => {
                start = i + 1;
                saw_marker = true;
            }
            SchedModelOp::BatchEnd => {
                batches.push(&model.steps[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !saw_marker && batches.is_empty() {
        batches.push(&model.steps[..]);
    } else if start < model.steps.len() {
        batches.push(&model.steps[start..]);
    }

    for (batch_no, steps) in batches.iter().enumerate() {
        // MD060: in any thread's program order, a commit before the
        // first WAL append of the same batch.
        let mut appended_by_thread: BTreeMap<usize, bool> = BTreeMap::new();
        let mut any_append = false;
        let mut commits: Vec<&str> = Vec::new();
        for step in *steps {
            match &step.op {
                SchedModelOp::WalAppend { .. } => {
                    appended_by_thread.insert(step.thread, true);
                    any_append = true;
                }
                SchedModelOp::Commit { engine } => {
                    commits.push(engine);
                    let appended = appended_by_thread
                        .get(&step.thread)
                        .copied()
                        .unwrap_or(false);
                    if model.wal_enabled && !appended {
                        report.push(
                            Diagnostic::new(
                                Code::Md060,
                                format!(
                                    "batch {batch_no}: engine '{engine}' commits before the \
                                     batch is appended to the change log"
                                ),
                            )
                            .with_note(
                                "a crash between the commit and the append loses the \
                                 committed changes: recovery replays only logged batches"
                                    .to_owned(),
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
        if model.wal_enabled && !commits.is_empty() && !any_append {
            report.push(Diagnostic::new(
                Code::Md060,
                format!(
                    "batch {batch_no}: {} engine commit(s) with no change-log append at all",
                    commits.len()
                ),
            ));
        }

        // MD063: prepared but neither committed nor rolled back.
        let mut open: Vec<&str> = Vec::new();
        for step in *steps {
            match &step.op {
                SchedModelOp::Prepare { engine } => open.push(engine),
                SchedModelOp::Commit { engine } | SchedModelOp::Rollback { engine } => {
                    open.retain(|e| e != engine);
                }
                _ => {}
            }
        }
        for engine in open {
            report.push(
                Diagnostic::new(
                    Code::Md063,
                    format!(
                        "batch {batch_no}: engine '{engine}' is prepared but neither \
                         committed nor rolled back by batch end"
                    ),
                )
                .with_note(
                    "a leaked prepared transaction blocks every later batch on this engine"
                        .to_owned(),
                ),
            );
        }
    }
}

/// MD061: per-table WAL LSNs must be strictly increasing in append
/// order across the whole model.
fn check_lsns(report: &mut CheckReport, model: &SchedModel) {
    if !model.wal_enabled {
        return;
    }
    let mut last: BTreeMap<&str, u64> = BTreeMap::new();
    for step in &model.steps {
        if let SchedModelOp::WalAppend { table, lsn } = &step.op {
            if let Some(prev) = last.get(table.as_str()) {
                if *lsn <= *prev {
                    report.push(Diagnostic::new(
                        Code::Md061,
                        format!(
                            "table '{table}': WAL LSN {lsn} appended after {prev} \
                             (LSNs must be strictly increasing per table)"
                        ),
                    ));
                }
            }
            last.insert(table.as_str(), *lsn);
        }
    }
}

/// MD062: the engine-acquisition precedence graph must be acyclic.
/// An edge `a → b` means some thread acquired `b` while holding `a`; a
/// cycle means two (or more) threads can each hold what the next one
/// wants.
fn check_lock_order(report: &mut CheckReport, model: &SchedModel) {
    // Collect edges per thread from Acquire/Release nesting. Prepare
    // counts as acquire+release of its engine when not already held
    // (the scheduler's own model spells the hold out explicitly).
    let mut edges: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut held: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for step in &model.steps {
        match &step.op {
            SchedModelOp::Acquire { engine } => {
                let stack = held.entry(step.thread).or_default();
                for h in stack.iter() {
                    let succ = edges.entry(h).or_default();
                    if !succ.contains(&engine.as_str()) {
                        succ.push(engine.as_str());
                    }
                }
                stack.push(engine.as_str());
            }
            SchedModelOp::Release { engine } => {
                if let Some(stack) = held.get_mut(&step.thread) {
                    if let Some(pos) = stack.iter().rposition(|e| e == engine) {
                        stack.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }

    // DFS cycle detection over the precedence graph; report one cycle
    // per offending start node, smallest name first (deterministic).
    let nodes: Vec<&str> = edges.keys().copied().collect();
    for &start in &nodes {
        if let Some(cycle) = find_cycle(start, &edges) {
            // Only report the cycle from its lexicographically smallest
            // member, so one cycle yields one diagnostic.
            if cycle.iter().min() == Some(&start) {
                report.push(
                    Diagnostic::new(
                        Code::Md062,
                        format!(
                            "engines {} are acquired in conflicting orders across threads",
                            cycle.join(" → ")
                        ),
                    )
                    .with_help(
                        "impose a single global acquisition order (the scheduler uses \
                         engine-name order) to make deadlock impossible"
                            .to_owned(),
                    ),
                );
            }
        }
    }
}

/// Returns a cycle through `start` as a node list (without the closing
/// repeat), or `None`.
fn find_cycle<'a>(start: &'a str, edges: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<&'a str>> {
    fn dfs<'a>(
        node: &'a str,
        start: &'a str,
        edges: &BTreeMap<&'a str, Vec<&'a str>>,
        path: &mut Vec<&'a str>,
    ) -> bool {
        for &next in edges.get(node).map(Vec::as_slice).unwrap_or(&[]) {
            if next == start {
                return true;
            }
            if !path.contains(&next) {
                path.push(next);
                if dfs(next, start, edges, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
    let mut path = vec![start];
    if dfs(start, start, edges, &mut path) {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SchedModelOp as Op;

    fn correct_model() -> SchedModel {
        let mut m = SchedModel::new();
        m.push(0, Op::BatchStart);
        m.push(1, Op::Acquire { engine: "a".into() });
        m.push(1, Op::Prepare { engine: "a".into() });
        m.push(1, Op::Release { engine: "a".into() });
        m.push(2, Op::Acquire { engine: "b".into() });
        m.push(2, Op::Prepare { engine: "b".into() });
        m.push(2, Op::Release { engine: "b".into() });
        m.push(
            0,
            Op::WalAppend {
                table: "sale".into(),
                lsn: 1,
            },
        );
        m.push(0, Op::Commit { engine: "a".into() });
        m.push(0, Op::Commit { engine: "b".into() });
        m.push(0, Op::BatchEnd);
        m
    }

    #[test]
    fn correct_schedule_is_clean() {
        let report = check_schedule(&correct_model());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn commit_before_append_is_md060() {
        let mut m = SchedModel::new();
        m.push(0, Op::BatchStart);
        m.push(1, Op::Prepare { engine: "a".into() });
        m.push(0, Op::Commit { engine: "a".into() });
        m.push(
            0,
            Op::WalAppend {
                table: "sale".into(),
                lsn: 1,
            },
        );
        m.push(0, Op::BatchEnd);
        let report = check_schedule(&m);
        assert!(report.has_errors());
        assert!(report.diagnostics().iter().any(|d| d.code == Code::Md060));
    }

    #[test]
    fn committed_but_never_logged_batch_is_md060() {
        let mut m = SchedModel::new();
        m.push(0, Op::BatchStart);
        m.push(1, Op::Prepare { engine: "a".into() });
        m.push(0, Op::Commit { engine: "a".into() });
        m.push(0, Op::BatchEnd);
        let report = check_schedule(&m);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::Md060));
        // With the log disabled the same schedule is legitimate.
        m.wal_enabled = false;
        assert!(check_schedule(&m).is_clean());
    }

    #[test]
    fn lsn_regression_is_md061() {
        let mut m = SchedModel::new();
        for lsn in [1u64, 2, 2] {
            m.push(
                0,
                Op::WalAppend {
                    table: "sale".into(),
                    lsn,
                },
            );
        }
        // Another table's parallel sequence does not confuse the check.
        m.push(
            0,
            Op::WalAppend {
                table: "product".into(),
                lsn: 1,
            },
        );
        let report = check_schedule(&m);
        let lsn_errors: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::Md061)
            .collect();
        assert_eq!(lsn_errors.len(), 1, "{}", report.render());
        assert!(lsn_errors[0].message.contains("'sale'"));
    }

    #[test]
    fn opposite_acquisition_orders_are_md062() {
        let mut m = SchedModel::new();
        m.wal_enabled = false;
        // Thread 1: a then b. Thread 2: b then a.
        for (thread, first, second) in [(1usize, "a", "b"), (2, "b", "a")] {
            m.push(
                thread,
                Op::Acquire {
                    engine: first.into(),
                },
            );
            m.push(
                thread,
                Op::Acquire {
                    engine: second.into(),
                },
            );
            m.push(
                thread,
                Op::Release {
                    engine: second.into(),
                },
            );
            m.push(
                thread,
                Op::Release {
                    engine: first.into(),
                },
            );
        }
        let report = check_schedule(&m);
        let inversions: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::Md062)
            .collect();
        assert_eq!(inversions.len(), 1, "{}", report.render());
    }

    #[test]
    fn nested_same_order_acquisition_is_clean() {
        let mut m = SchedModel::new();
        m.wal_enabled = false;
        for thread in [1usize, 2] {
            m.push(thread, Op::Acquire { engine: "a".into() });
            m.push(thread, Op::Acquire { engine: "b".into() });
            m.push(thread, Op::Release { engine: "b".into() });
            m.push(thread, Op::Release { engine: "a".into() });
        }
        assert!(check_schedule(&m).is_clean());
    }

    #[test]
    fn leaked_prepare_is_md063() {
        let mut m = SchedModel::new();
        m.wal_enabled = false;
        m.push(0, Op::BatchStart);
        m.push(1, Op::Prepare { engine: "a".into() });
        m.push(1, Op::Prepare { engine: "b".into() });
        m.push(0, Op::Rollback { engine: "b".into() });
        m.push(0, Op::BatchEnd);
        let report = check_schedule(&m);
        let leaks: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::Md063)
            .collect();
        assert_eq!(leaks.len(), 1, "{}", report.render());
        assert!(leaks[0].message.contains("'a'"));
        assert_eq!(report.error_count(), 0, "MD063 is a warning");
    }

    #[test]
    fn unmarked_step_lists_form_one_implicit_batch() {
        let mut m = SchedModel::new();
        m.push(1, Op::Prepare { engine: "a".into() });
        m.push(
            0,
            Op::WalAppend {
                table: "sale".into(),
                lsn: 1,
            },
        );
        m.push(0, Op::Commit { engine: "a".into() });
        assert!(check_schedule(&m).is_clean());
    }
}

//! # `md-check` — a compiler-style static analyzer for GPSJ views
//!
//! The paper's guarantees (the unique minimal self-maintainable `{V} ∪ X`,
//! Theorem 1) only hold when the preconditions of Sections 2–5 are met:
//! key/foreign-key join trees, declared referential integrity, no exposed
//! updates on reduced tables, CSMAS-only folding. This crate checks a view
//! definition against a [`Catalog`] *at registration time* and reports
//! every violation — and every forgone minimization — as a structured
//! diagnostic with a stable code (`MD001`–`MD050`), a severity, and a
//! source span into the SQL text, rendered rustc-style or as JSON.
//!
//! Passes, in order (earlier failures suppress later passes):
//!
//! 1. **Front end** (`MD001`/`MD002`) — lexing and parsing.
//! 2. **Name resolution** (`MD010`–`MD016`) — tables, columns, aliases,
//!    `GROUP BY` coherence, condition typing.
//! 3. **Join graph** (`MD020`–`MD023`, `MD033`) — Definition 2
//!    well-formedness: key joins, tree shape, referential integrity.
//! 4. **Aggregates** (`MD024`, `MD030`–`MD032`, `MD050`) — Tables 1–2
//!    classification under the view's change regime.
//! 5. **Exposure** (`MD034`) — Section 2.1 exposed updates.
//! 6. **Plan audit** (`MD040`/`MD041`) — Algorithm 3.2 cross-check: what
//!    the derived plan materializes versus what a tighter contract allows.
//! 7. **Scheduler ordering** (`MD060`–`MD063`) — a separate entry point,
//!    [`check_schedule`], over abstract [`SchedModel`]s of the batch
//!    scheduler: commit-before-append, WAL LSN regressions, lock-order
//!    inversions, leaked prepared transactions.
//! 8. **Fault domains** (`MD070`–`MD073`) — a separate entry point,
//!    [`check_fault_domains`], over a warehouse's [`FaultDomainModel`]:
//!    auto-repair on unrebuildable summaries, quarantine without a
//!    durable log, self-defeating retry/dead-letter settings.
//!
//! ```
//! use md_check::check_sql;
//! use md_relation::{Catalog, DataType, Schema};
//!
//! let mut cat = Catalog::new();
//! cat.add_table(
//!     "sale",
//!     Schema::from_pairs(&[("id", DataType::Int), ("price", DataType::Double)]),
//!     0,
//! )
//! .unwrap();
//! let report = check_sql("SELECT sale.nope FROM sale", &cat);
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics()[0].code.as_str(), "MD012");
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod agg_pass;
mod diag;
mod exposure_pass;
mod fault_pass;
mod graph_pass;
mod json;
mod plan_pass;
mod render;
mod resolve_pass;
mod sched_pass;

pub use diag::{CheckReport, Code, Diagnostic, Severity};
pub use fault_pass::{check_fault_domains, FaultDomainModel, FaultDomainSummary};
pub use md_sql::Span;
pub use sched_pass::{check_schedule, SchedModel, SchedModelOp, SchedStep};

use md_algebra::GpsjView;
use md_obs::Obs;
use md_relation::Catalog;
use md_sql::SqlError;

/// Checks one SQL statement. Never fails: every problem, from a stray
/// character to a suboptimal plan, becomes a diagnostic in the report.
pub fn check_sql(sql: &str, catalog: &Catalog) -> CheckReport {
    check_file("<sql>", sql, catalog)
}

/// Checks one SQL statement read from `origin` (a file name, shown in the
/// rendered `-->` location lines).
pub fn check_file(origin: &str, sql: &str, catalog: &Catalog) -> CheckReport {
    check_file_obs(origin, sql, catalog, &Obs::noop())
}

/// [`check_file`] under an observability handle: each analysis pass runs
/// inside its own span (`check.parse`, `check.resolve`, `check.graph`,
/// `check.aggregates`, `check.exposure`, `check.plan_audit`), so strict
/// registrations show up in a warehouse trace pass by pass.
pub fn check_file_obs(origin: &str, sql: &str, catalog: &Catalog, obs: &Obs) -> CheckReport {
    let mut report = CheckReport::new(origin, Some(sql.to_owned()));
    let parsed = {
        let _span = obs.span("check.parse");
        match md_sql::parse(sql) {
            Ok(p) => p,
            Err(e) => {
                report.push(front_end_diagnostic(e));
                return report;
            }
        }
    };
    report.set_view(parsed.name.clone());

    let resolved = {
        let _span = obs.span("check.resolve");
        resolve_pass::run(&mut report, &parsed, catalog)
    };
    let Some(resolved) = resolved else {
        return report;
    };
    {
        let _span = obs.span("check.graph");
        if !graph_pass::run(&mut report, &parsed, &resolved, catalog) {
            return report;
        }
    }

    // The passes above mirror every rejection of the resolver, so this
    // succeeds; the fallback keeps the analyzer total if they ever diverge.
    let view = match md_sql::resolve(&parsed, catalog, "view") {
        Ok(v) => v,
        Err(e) => {
            report.push(
                Diagnostic::new(Code::Md015, format!("invalid view definition: {e}"))
                    .with_span(Some(parsed.spans.statement)),
            );
            return report;
        }
    };

    {
        let _span = obs.span("check.aggregates");
        agg_pass::run(&mut report, &parsed, &view, catalog);
    }
    {
        let _span = obs.span("check.exposure");
        exposure_pass::run(&mut report, &parsed, &view, catalog);
    }
    if !report.has_errors() {
        let _span = obs.span("check.plan_audit");
        plan_pass::run(&mut report, &parsed, &view, catalog);
    }
    report
}

/// Checks an already-constructed [`GpsjView`] by rendering it back to SQL
/// (`md_sql::view_to_sql`) and checking the rendered text, so spans point
/// into the canonical SQL form of the view.
pub fn check_view(view: &GpsjView, catalog: &Catalog) -> CheckReport {
    let origin = format!("<view {}>", view.name);
    match md_sql::view_to_sql(view, catalog) {
        Ok(sql) => check_file(&origin, &sql, catalog),
        Err(e) => {
            let mut report = CheckReport::new(origin, None);
            report.set_view(Some(view.name.clone()));
            report.push(Diagnostic::new(
                Code::Md015,
                format!("view cannot be rendered against this catalog: {e}"),
            ));
            report
        }
    }
}

fn front_end_diagnostic(e: SqlError) -> Diagnostic {
    match e {
        SqlError::Lex { offset, message } => {
            Diagnostic::new(Code::Md001, message).with_span(Some(Span::new(offset, offset + 1)))
        }
        SqlError::Parse { offset, message } => {
            Diagnostic::new(Code::Md002, message).with_span(Some(Span::new(offset, offset + 1)))
        }
        other => Diagnostic::new(Code::Md002, other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_relation::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let time = cat
            .add_table(
                "time",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("month", DataType::Int),
                    ("year", DataType::Int),
                ]),
                0,
            )
            .unwrap();
        let sale = cat
            .add_table(
                "sale",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("timeid", DataType::Int),
                    ("price", DataType::Double),
                ]),
                0,
            )
            .unwrap();
        cat.add_foreign_key(sale, 1, time).unwrap();
        cat
    }

    #[test]
    fn clean_view_passes() {
        let cat = catalog();
        let report = check_sql(
            "SELECT time.month, SUM(sale.price) AS total, COUNT(*) AS n \
             FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month",
            &cat,
        );
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn lex_and_parse_errors_have_codes() {
        let cat = catalog();
        assert_eq!(
            check_sql("SELECT @ FROM sale", &cat).diagnostics()[0].code,
            Code::Md001
        );
        assert_eq!(
            check_sql("SELECT FROM sale", &cat).diagnostics()[0].code,
            Code::Md002
        );
    }

    #[test]
    fn resolution_errors_are_fatal_to_later_passes() {
        let cat = catalog();
        let report = check_sql("SELECT nope.x, COUNT(*) AS n FROM nope", &cat);
        assert!(report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .all(|d| d.code == Code::Md010 || d.code == Code::Md012));
    }

    #[test]
    fn non_key_join_is_md020() {
        let cat = catalog();
        let report = check_sql(
            "SELECT COUNT(*) AS n FROM sale, time WHERE sale.timeid = time.month",
            &cat,
        );
        assert!(report.diagnostics().iter().any(|d| d.code == Code::Md020));
    }

    #[test]
    fn check_view_round_trips_through_sql() {
        let cat = catalog();
        let view = md_sql::parse_view(
            "CREATE VIEW v AS SELECT time.month, COUNT(*) AS n \
             FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month",
            &cat,
            "v",
        )
        .unwrap();
        let report = check_view(&view, &cat);
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(report.view_name(), Some("v"));
        assert_eq!(report.origin(), "<view v>");
    }

    #[test]
    fn obs_variant_traces_each_pass() {
        let cat = catalog();
        let obs = Obs::new(md_obs::ObsConfig::full());
        let report = check_file_obs(
            "<sql>",
            "SELECT time.month, SUM(sale.price) AS total, COUNT(*) AS n \
             FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month",
            &cat,
            &obs,
        );
        assert!(!report.has_errors(), "{}", report.render());
        let names: Vec<&str> = obs.tracer().events().iter().map(|e| e.name).collect();
        for pass in [
            "check.parse",
            "check.resolve",
            "check.graph",
            "check.aggregates",
            "check.exposure",
            "check.plan_audit",
        ] {
            assert!(names.contains(&pass), "missing span '{pass}' in {names:?}");
        }
        // Early exits skip later passes: a parse error traces only parse.
        obs.tracer().clear();
        check_file_obs("<sql>", "SELECT FROM sale", &cat, &obs);
        let names: Vec<&str> = obs.tracer().events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["check.parse"]);
    }

    #[test]
    fn reports_are_deterministic() {
        let cat = catalog();
        let sql = "SELECT time.month, MIN(sale.price) AS m FROM sale, time \
                   WHERE sale.timeid = time.id AND time.year = 1997 GROUP BY time.month";
        let a = check_sql(sql, &cat);
        let b = check_sql(sql, &cat);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
    }
}

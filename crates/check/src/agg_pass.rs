//! Pass 4 — aggregate classification (`MD024`, `MD030`–`MD032`, `MD050`).
//!
//! Applies the paper's Section 3.1 taxonomy (Tables 1 and 2) to every
//! select item: superfluous aggregates are rejected (they would make
//! `derive` fail), non-CSMAS aggregates are flagged with their consequence,
//! and the `AVG → SUM/COUNT` rewrite is surfaced as a note. The change
//! regime matters: under append-only sources (Section 4) `MIN`/`MAX` are
//! insertion-maintainable and stay silent.

use md_algebra::{AggFunc, GpsjView, SelectItem};
use md_core::aggregates::{self, ChangeRegime};
use md_relation::Catalog;
use md_sql::ParsedView;

use crate::diag::{CheckReport, Code, Diagnostic};
use crate::resolve_pass::select_span;

pub(crate) fn run(
    report: &mut CheckReport,
    parsed: &ParsedView,
    view: &GpsjView,
    catalog: &Catalog,
) {
    let regime = aggregates::regime_of(view, catalog).unwrap_or(ChangeRegime::General);

    // MD024: superfluous aggregates (Section 2.1 footnote 1). `derive`
    // rejects these outright, so they are errors here.
    for alias in aggregates::find_superfluous(view, catalog) {
        let item = view.select.iter().position(|it| it.alias() == alias);
        report.push(
            Diagnostic::new(
                Code::Md024,
                format!("aggregate '{alias}' is superfluous: its argument is a group-by attribute"),
            )
            .with_span(item.and_then(|i| select_span(parsed, i)))
            .with_label("every group holds exactly one value of this argument")
            .with_help("project the plain column instead of aggregating it"),
        );
    }

    let mut has_count_star = false;
    let mut first_sum_avg: Option<(usize, &str)> = None;
    for (i, item) in view.select.iter().enumerate() {
        let SelectItem::Agg { agg, alias } = item else {
            continue;
        };
        let span = select_span(parsed, i);
        let arg_text = |catalog: &Catalog| -> String {
            agg.arg
                .map(|c| c.display(catalog))
                .unwrap_or_else(|| "*".to_owned())
        };
        if agg.func == AggFunc::Count && agg.arg.is_none() && !agg.distinct {
            has_count_star = true;
        }
        if agg.distinct {
            // MD031: DISTINCT defeats distributivity in every regime.
            let arg = arg_text(catalog);
            let mut d = Diagnostic::new(
                Code::Md031,
                format!(
                    "{}(DISTINCT {arg}) is not completely self-maintainable",
                    agg.func.name()
                ),
            )
            .with_span(span)
            .with_label("DISTINCT makes any aggregate non-distributive");
            if let Some(col) = agg.arg {
                if let Ok(def) = catalog.def(col.table) {
                    d = d.with_note(format!(
                        "the auxiliary view for '{}' must keep raw '{}' values and can \
                         never be eliminated (Section 3.3)",
                        def.name,
                        def.schema.column(col.column).name
                    ));
                }
            }
            report.push(d);
        } else if matches!(agg.func, AggFunc::Min | AggFunc::Max) && regime == ChangeRegime::General
        {
            // MD030: MIN/MAX survive insertions but not deletions (Table 1).
            let arg = arg_text(catalog);
            let mut d = Diagnostic::new(
                Code::Md030,
                format!(
                    "{}({arg}) is not completely self-maintainable",
                    agg.func.name()
                ),
            )
            .with_span(span)
            .with_label("deleting the current extremum forces recomputation");
            if let Some(col) = agg.arg {
                if let Ok(def) = catalog.def(col.table) {
                    d = d.with_note(format!(
                        "the auxiliary view for '{}' must keep raw '{}' values and can \
                         never be eliminated (Section 3.3)",
                        def.name,
                        def.schema.column(col.column).name
                    ));
                }
            }
            report.push(d.with_help(
                "declare every source table insert-only if the warehouse is append-only: \
                     MIN/MAX are self-maintainable under insertions (Section 4)",
            ));
        } else if agg.func == AggFunc::Avg {
            // MD050: AVG is never stored as-is (Table 2 rewrite).
            report.push(
                Diagnostic::new(
                    Code::Md050,
                    format!(
                        "AVG({}) is maintained as SUM/COUNT and recomputed on read",
                        arg_text(catalog)
                    ),
                )
                .with_span(span)
                .with_note("Table 2 rewrites AVG(a) into the distributive set {SUM(a), COUNT(*)}"),
            );
        }
        if matches!(agg.func, AggFunc::Sum | AggFunc::Avg)
            && !agg.distinct
            && first_sum_avg.is_none()
        {
            first_sum_avg = Some((i, alias.as_str()));
        }
    }

    // MD032: SUM/AVG need a COUNT(*) companion to detect emptied groups
    // under deletions (Table 1, SMAS column).
    if regime == ChangeRegime::General && !has_count_star {
        if let Some((i, alias)) = first_sum_avg {
            report.push(
                Diagnostic::new(
                    Code::Md032,
                    "SUM/AVG without a COUNT(*) companion cannot detect groups becoming empty",
                )
                .with_span(select_span(parsed, i))
                .with_label(format!("'{alias}' needs a group count under deletions"))
                .with_help("add COUNT(*) to the select list (Table 1 SMAS companion)"),
            );
        }
    }
}

//! Golden-file tests: every stable diagnostic code is exercised by at
//! least one corpus file, and the rendered report plus its JSON form are
//! pinned byte-for-byte.
//!
//! Each `tests/golden/NAME.sql` holds one GPSJ statement; the filename
//! prefix selects the catalog it is checked against:
//!
//! * `retail_`  — the retail star schema with pessimistic contracts
//!   (every non-key column updatable), so exposure lints fire;
//! * `tight_`   — the same schema under tight contracts (`time`
//!   append-only, single updatable column per table);
//! * `toy_`     — small purpose-built catalogs (multipath, cycle,
//!   missing foreign keys) defined below.
//!
//! The expected rendered output lives next to the input as
//! `NAME.expected`, the expected JSON as `NAME.json`. Re-bless after an
//! intentional output change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p md-check --test golden
//! ```

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use md_check::{check_file, Code};
use md_relation::{Catalog, DataType, Schema};
use md_workload::{retail_catalog, Contracts};

/// Two paths from `order` to `customer`: directly and through `shipment`.
fn toy_multipath() -> Catalog {
    let mut cat = Catalog::new();
    let customer = cat
        .add_table(
            "customer",
            Schema::from_pairs(&[("id", DataType::Int), ("region", DataType::Str)]),
            0,
        )
        .unwrap();
    let shipment = cat
        .add_table(
            "shipment",
            Schema::from_pairs(&[("id", DataType::Int), ("customerid", DataType::Int)]),
            0,
        )
        .unwrap();
    let orders = cat
        .add_table(
            "orders",
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("customerid", DataType::Int),
                ("shipmentid", DataType::Int),
                ("amount", DataType::Double),
            ]),
            0,
        )
        .unwrap();
    cat.add_foreign_key(orders, 1, customer).unwrap();
    cat.add_foreign_key(orders, 2, shipment).unwrap();
    cat.add_foreign_key(shipment, 1, customer).unwrap();
    cat
}

/// Mutually referencing tables: joining both directions forms a cycle.
fn toy_cycle() -> Catalog {
    let mut cat = Catalog::new();
    let a = cat
        .add_table(
            "alpha",
            Schema::from_pairs(&[("id", DataType::Int), ("betaid", DataType::Int)]),
            0,
        )
        .unwrap();
    let b = cat
        .add_table(
            "beta",
            Schema::from_pairs(&[("id", DataType::Int), ("alphaid", DataType::Int)]),
            0,
        )
        .unwrap();
    cat.add_foreign_key(a, 1, b).unwrap();
    cat.add_foreign_key(b, 1, a).unwrap();
    cat
}

/// A key join with no declared referential integrity.
fn toy_nofk() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(
        "event",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("deviceid", DataType::Int),
            ("value", DataType::Double),
        ]),
        0,
    )
    .unwrap();
    cat.add_table(
        "device",
        Schema::from_pairs(&[("id", DataType::Int), ("site", DataType::Str)]),
        0,
    )
    .unwrap();
    cat
}

fn catalog_for(stem: &str) -> Catalog {
    if stem.starts_with("retail_") {
        retail_catalog(Contracts::Default).0
    } else if stem.starts_with("tight_") {
        retail_catalog(Contracts::Tight).0
    } else if stem.starts_with("toy_multipath") {
        toy_multipath()
    } else if stem.starts_with("toy_cycle") {
        toy_cycle()
    } else if stem.starts_with("toy_nofk") {
        toy_nofk()
    } else {
        panic!("golden file '{stem}' has no catalog prefix (retail_/tight_/toy_*)");
    }
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn compare(path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(path)
        .unwrap_or_else(|_| panic!("missing {}; run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "golden mismatch for {}; re-bless with UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn golden_corpus() {
    let dir = golden_dir();
    let mut cases: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no golden cases in {}", dir.display());

    let mut seen_codes = BTreeSet::new();
    for case in &cases {
        let stem = case.file_stem().unwrap().to_str().unwrap().to_owned();
        let sql = fs::read_to_string(case).unwrap();
        let sql = sql.trim_end().trim_end_matches(';');
        let catalog = catalog_for(&stem);
        let origin = format!("{stem}.sql");

        // Byte-identical across runs.
        let report = check_file(&origin, sql, &catalog);
        let again = check_file(&origin, sql, &catalog);
        assert_eq!(report.render(), again.render(), "{stem}: nondeterministic");
        assert_eq!(
            report.to_json(),
            again.to_json(),
            "{stem}: nondeterministic"
        );

        for d in report.diagnostics() {
            seen_codes.insert(d.code);
        }
        compare(&case.with_extension("expected"), &report.render());
        compare(&case.with_extension("json"), &report.to_json());
    }

    // Every stable SQL-pass code must be pinned by at least one golden
    // case. The schedule-ordering codes (MD06x) are emitted over
    // `SchedModel`s and the fault-domain codes (MD07x) over
    // `FaultDomainModel`s, not SQL; they are pinned by the sched_pass
    // and fault_pass tests respectively.
    let missing: Vec<&str> = Code::ALL
        .iter()
        .filter(|c| !c.is_schedule() && !c.is_fault_domain() && !seen_codes.contains(*c))
        .map(|c| c.as_str())
        .collect();
    assert!(
        missing.is_empty(),
        "codes with no golden coverage: {missing:?}"
    );
}

#[test]
fn clean_views_stay_clean() {
    // The workload's canonical views never regress to error level against
    // the tight retail catalog.
    let (catalog, _) = retail_catalog(Contracts::Tight);
    for sql in [
        md_workload::views::PRODUCT_SALES_SQL,
        md_workload::views::PRODUCT_SALES_MAX_SQL,
        md_workload::views::STORE_REVENUE_SQL,
        md_workload::views::DAILY_PRODUCT_SQL,
    ] {
        let report = check_file("<workload>", sql, &catalog);
        assert!(!report.has_errors(), "{}", report.render());
    }
}

SELECT COUNT(*) AS n FROM sale, sale

SELECT sale.nope, COUNT(*) AS n FROM sale GROUP BY sale.nope

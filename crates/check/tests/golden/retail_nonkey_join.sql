SELECT COUNT(*) AS n FROM sale, time WHERE sale.timeid = time.month

SELECT COUNT(*) AS n FROM warehouse

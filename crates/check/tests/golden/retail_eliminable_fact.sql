SELECT time.id AS timeid, SUM(price) AS total, COUNT(*) AS n
FROM sale, time
WHERE sale.timeid = time.id AND time.year = 1997
GROUP BY time.id

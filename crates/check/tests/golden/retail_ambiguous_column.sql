SELECT id, COUNT(*) AS n FROM sale, time WHERE sale.timeid = time.id GROUP BY id

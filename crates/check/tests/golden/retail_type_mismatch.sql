SELECT time.month, COUNT(*) AS n FROM sale, time
WHERE sale.timeid = time.id AND sale.price = 'cheap' GROUP BY time.month

SELECT COUNT(*) AS n FROM alpha, beta
WHERE alpha.betaid = beta.id AND beta.alphaid = alpha.id

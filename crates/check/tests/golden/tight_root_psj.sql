SELECT sale.id AS sid, MAX(sale.price) AS maxp, COUNT(*) AS n
FROM sale GROUP BY sale.id

SELECT device.site, SUM(event.value) AS total, COUNT(*) AS n
FROM event, device WHERE event.deviceid = device.id GROUP BY device.site

CREATE VIEW product_sales AS
SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
       COUNT(DISTINCT brand) AS DifferentBrands
FROM sale, time, product
WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
GROUP BY time.month

CREATE VIEW store_revenue AS
SELECT store.city, SUM(price) AS Revenue, AVG(price) AS AvgTicket, COUNT(*) AS Tickets
FROM sale, store WHERE sale.storeid = store.id GROUP BY store.city

CREATE VIEW product_sales_max AS
SELECT sale.productid, MAX(sale.price) AS MaxPrice, SUM(sale.price) AS TotalPrice,
       COUNT(*) AS TotalCount
FROM sale GROUP BY sale.productid

SELECT COUNT(*) AS n FROM sale, time

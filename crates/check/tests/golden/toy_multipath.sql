SELECT customer.region, SUM(orders.amount) AS total, COUNT(*) AS n
FROM orders, shipment, customer
WHERE orders.customerid = customer.id AND orders.shipmentid = shipment.id
  AND shipment.customerid = customer.id
GROUP BY customer.region

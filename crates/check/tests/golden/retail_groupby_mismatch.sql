SELECT time.month, SUM(price) AS total FROM sale, time
WHERE sale.timeid = time.id GROUP BY time.year

SELECT store.city, SUM(sale.price) AS revenue
FROM sale, store WHERE sale.storeid = store.id GROUP BY store.city

SELECT sale.productid, MIN(sale.productid) AS dup, COUNT(*) AS n
FROM sale GROUP BY sale.productid

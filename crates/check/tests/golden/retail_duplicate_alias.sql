SELECT time.month, SUM(price) AS x, COUNT(*) AS x FROM sale, time
WHERE sale.timeid = time.id GROUP BY time.month

//! Columnar chunks: the primary storage representation of `md-relation`.
//!
//! A [`Chunk`] holds a horizontal slice of a relation as per-attribute
//! typed arrays — `Int64`, `Float64`, dictionary-encoded `Utf8` and `Bool`
//! columns — each with an optional validity bitmap. Chunks are immutable
//! once built; mutation happens in [`crate::table::BaseTable`]'s growable
//! column store, which emits chunks on demand.
//!
//! The chunk layout exists for the maintenance hot path: the paper's
//! economics only hold if folding a coalesced delta batch into the
//! auxiliary/summary views runs at memory speed, and that requires typed,
//! contiguous columns (selection bitmaps, batched SUM/COUNT folds) rather
//! than per-row `Vec<Value>` traversal. The row-oriented API remains as a
//! thin compatibility layer ([`Chunk::row`], [`Chunk::iter_rows`]) for the
//! REPL, codec and recompute-oracle paths.
//!
//! String columns are dictionary-encoded *per chunk*: every chunk carries
//! its own dictionary (built fresh when the chunk is built — "dictionary
//! rollover"), so chunks are self-contained and freely relocatable.

use std::collections::HashMap;

use crate::codec::{Decoder, Encoder};
use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// A packed bitmap over `len` slots, one bit each.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all set to `fill`.
    pub fn filled(len: usize, fill: bool) -> Self {
        let nwords = len.div_ceil(64);
        let mut words = vec![if fill { u64::MAX } else { 0 }; nwords];
        if fill && len % 64 != 0 {
            // Keep trailing bits clear so popcounts stay exact.
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len % 64 == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// The bit at `idx`.
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Sets the bit at `idx` to `bit`.
    pub fn set(&mut self, idx: usize, bit: bool) {
        debug_assert!(idx < self.len);
        if bit {
            self.words[idx / 64] |= 1u64 << (idx % 64);
        } else {
            self.words[idx / 64] &= !(1u64 << (idx % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when every bit is set.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// In-place intersection with `other` (must have equal length).
    pub fn and_in_place(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// In-place union with `other` (must have equal length).
    pub fn or_in_place(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Flips every bit in place.
    pub fn not_in_place(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        // Clear bits past `len` so popcounts stay exact.
        if self.len % 64 != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// The raw 64-bit words backing the bitmap.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Typed backing storage of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Double(Vec<f64>),
    /// Dictionary-encoded strings: `codes[i]` indexes `dict`.
    Str {
        /// The chunk-local dictionary, in first-occurrence order.
        dict: Vec<String>,
        /// Per-slot dictionary codes.
        codes: Vec<u32>,
    },
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// Creates empty storage for `dtype`.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Double => ColumnData::Double(Vec::new()),
            DataType::Str => ColumnData::Str {
                dict: Vec::new(),
                codes: Vec::new(),
            },
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Returns `true` when the column holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The data type this storage holds.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Double(_) => DataType::Double,
            ColumnData::Str { .. } => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }
}

/// One column of a [`Chunk`]: typed data plus an optional validity bitmap
/// (absent = every slot valid; the paper's model is null-free, but delta
/// chunks built during maintenance carry absent aggregate arguments as
/// nulls).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
}

impl Column {
    /// Wraps typed data with an optional validity bitmap.
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Result<Self> {
        if let Some(v) = &validity {
            if v.len() != data.len() {
                return Err(RelationError::Invalid(format!(
                    "validity bitmap length {} != column length {}",
                    v.len(),
                    data.len()
                )));
            }
        }
        Ok(Column { data, validity })
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the column holds no slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The typed backing storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap, when any slot may be null.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// Whether the slot at `idx` holds a value.
    pub fn is_valid(&self, idx: usize) -> bool {
        self.validity.as_ref().map(|v| v.get(idx)).unwrap_or(true)
    }

    /// The typed `i64` slice, when this is an `Int` column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The typed `f64` slice, when this is a `Double` column.
    pub fn as_double(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Double(v) => Some(v),
            _ => None,
        }
    }

    /// The typed `bool` slice, when this is a `Bool` column.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The `(dictionary, codes)` pair, when this is a `Str` column.
    pub fn as_str_dict(&self) -> Option<(&[String], &[u32])> {
        match &self.data {
            ColumnData::Str { dict, codes } => Some((dict, codes)),
            _ => None,
        }
    }

    /// Materializes the value at `idx` (`None` when the slot is null).
    pub fn value(&self, idx: usize) -> Option<Value> {
        if !self.is_valid(idx) {
            return None;
        }
        Some(match &self.data {
            ColumnData::Int(v) => Value::Int(v[idx]),
            ColumnData::Double(v) => Value::Double(v[idx]),
            ColumnData::Str { dict, codes } => Value::Str(dict[codes[idx] as usize].clone()),
            ColumnData::Bool(v) => Value::Bool(v[idx]),
        })
    }
}

/// An immutable columnar slice of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

impl Chunk {
    /// Assembles a chunk from per-attribute columns. Every column must
    /// match the schema's arity and types and have equal length.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(RelationError::Invalid(format!(
                "chunk has {} columns, schema arity is {}",
                columns.len(),
                schema.arity()
            )));
        }
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        for (col, def) in columns.iter().zip(schema.columns()) {
            if col.len() != len {
                return Err(RelationError::Invalid(format!(
                    "ragged chunk: column '{}' has {} slots, expected {len}",
                    def.name,
                    col.len()
                )));
            }
            if col.data().dtype() != def.dtype {
                return Err(RelationError::TypeError {
                    expected: def.dtype,
                    found: col.data().dtype(),
                });
            }
        }
        Ok(Chunk {
            schema,
            columns,
            len,
        })
    }

    /// Builds a null-free chunk from rows (each checked against `schema`).
    pub fn from_rows(schema: Schema, rows: &[Row]) -> Result<Self> {
        let mut b = ChunkBuilder::new(schema);
        for row in rows {
            b.push_row(row)?;
        }
        Ok(b.finish())
    }

    /// The chunk's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Materializes the cell at (`row`, `col`); `None` when null.
    pub fn value(&self, row: usize, col: usize) -> Option<Value> {
        self.columns[col].value(row)
    }

    /// Materializes row `idx`. Fails on null slots — the row-compat layer
    /// serves the null-free relational surface only.
    pub fn row(&self, idx: usize) -> Result<Row> {
        let values = self
            .columns
            .iter()
            .enumerate()
            .map(|(c, col)| {
                col.value(idx).ok_or_else(|| {
                    RelationError::Invalid(format!(
                        "null slot at row {idx}, column '{}' has no row representation",
                        self.schema.columns()[c].name
                    ))
                })
            })
            .collect::<Result<Vec<Value>>>()?;
        Ok(Row::new(values))
    }

    /// Iterates over all rows, materializing each (see [`Chunk::row`]).
    pub fn iter_rows(&self) -> impl Iterator<Item = Result<Row>> + '_ {
        (0..self.len).map(|i| self.row(i))
    }

    /// Keeps only the rows whose bit is set in `mask`, re-encoding string
    /// dictionaries to the surviving values (rollover).
    pub fn filter(&self, mask: &Bitmap) -> Result<Chunk> {
        if mask.len() != self.len {
            return Err(RelationError::Invalid(format!(
                "filter mask length {} != chunk length {}",
                mask.len(),
                self.len
            )));
        }
        let mut b = ChunkBuilder::new(self.schema.clone());
        for i in mask.iter_ones() {
            let vals: Vec<Option<Value>> = self.columns.iter().map(|c| c.value(i)).collect();
            b.push_values(&vals)?;
        }
        Ok(b.finish())
    }

    /// Projects the chunk onto `cols` (columnar projection: columns are
    /// cloned wholesale, no per-row work).
    pub fn project(&self, cols: &[usize]) -> Result<Chunk> {
        let schema = self.schema.project(cols);
        let columns = cols.iter().map(|&c| self.columns[c].clone()).collect();
        Chunk::new(schema, columns)
    }

    /// Serializes the chunk body (schema is carried by the container).
    pub fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.len as u32);
        for col in &self.columns {
            match col.validity() {
                Some(v) => {
                    e.put_u8(1);
                    for w in v.words() {
                        e.put_u64(*w);
                    }
                }
                None => e.put_u8(0),
            }
            match col.data() {
                ColumnData::Int(v) => {
                    for x in v {
                        e.put_i64(*x);
                    }
                }
                ColumnData::Double(v) => {
                    for x in v {
                        e.put_f64(*x);
                    }
                }
                ColumnData::Str { dict, codes } => {
                    e.put_u32(dict.len() as u32);
                    for s in dict {
                        e.put_str(s);
                    }
                    for c in codes {
                        e.put_u32(*c);
                    }
                }
                ColumnData::Bool(v) => {
                    for x in v {
                        e.put_u8(*x as u8);
                    }
                }
            }
        }
    }

    /// Deserializes a chunk body encoded by [`Chunk::encode`].
    pub fn decode(schema: Schema, d: &mut Decoder<'_>) -> Result<Chunk> {
        let len = d.take_u32()? as usize;
        let nwords = len.div_ceil(64);
        let mut columns = Vec::with_capacity(schema.arity());
        for def in schema.columns() {
            let validity = match d.take_u8()? {
                0 => None,
                _ => {
                    let mut words = Vec::with_capacity(nwords);
                    for _ in 0..nwords {
                        words.push(d.take_u64()?);
                    }
                    Some(Bitmap { words, len })
                }
            };
            let data = match def.dtype {
                DataType::Int => {
                    let mut v = Vec::with_capacity(len);
                    for _ in 0..len {
                        v.push(d.take_i64()?);
                    }
                    ColumnData::Int(v)
                }
                DataType::Double => {
                    let mut v = Vec::with_capacity(len);
                    for _ in 0..len {
                        v.push(d.take_f64()?);
                    }
                    ColumnData::Double(v)
                }
                DataType::Str => {
                    let dict_len = d.take_u32()? as usize;
                    let mut dict = Vec::with_capacity(dict_len);
                    for _ in 0..dict_len {
                        dict.push(d.take_str()?);
                    }
                    let mut codes = Vec::with_capacity(len);
                    for _ in 0..len {
                        let c = d.take_u32()?;
                        if c as usize >= dict_len {
                            return Err(RelationError::Invalid(format!(
                                "dictionary code {c} out of range ({dict_len} entries)"
                            )));
                        }
                        codes.push(c);
                    }
                    ColumnData::Str { dict, codes }
                }
                DataType::Bool => {
                    let mut v = Vec::with_capacity(len);
                    for _ in 0..len {
                        v.push(d.take_u8()? != 0);
                    }
                    ColumnData::Bool(v)
                }
            };
            columns.push(Column::new(data, validity)?);
        }
        Chunk::new(schema, columns)
    }
}

/// Incremental [`Chunk`] construction with per-column dictionary interning.
#[derive(Debug)]
pub struct ChunkBuilder {
    schema: Schema,
    data: Vec<ColumnData>,
    interners: Vec<HashMap<String, u32>>,
    /// Per-column validity bits, allocated lazily on the first null.
    validity: Vec<Option<Bitmap>>,
    len: usize,
}

impl ChunkBuilder {
    /// Creates an empty builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        let data = schema
            .columns()
            .iter()
            .map(|c| ColumnData::empty(c.dtype))
            .collect();
        ChunkBuilder {
            schema,
            data,
            interners: vec![HashMap::new(); arity],
            validity: vec![None; arity],
            len: 0,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one null-free row, checking it against the schema.
    pub fn push_row(&mut self, row: &Row) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(RelationError::Invalid(format!(
                "row arity {} != chunk arity {}",
                row.arity(),
                self.schema.arity()
            )));
        }
        for (c, value) in row.values().iter().enumerate() {
            self.push_cell(c, Some(value))?;
        }
        self.len += 1;
        Ok(())
    }

    /// Appends one row of optional cells (`None` = null).
    pub fn push_values(&mut self, values: &[Option<Value>]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::Invalid(format!(
                "cell count {} != chunk arity {}",
                values.len(),
                self.schema.arity()
            )));
        }
        for (c, value) in values.iter().enumerate() {
            self.push_cell(c, value.as_ref())?;
        }
        self.len += 1;
        Ok(())
    }

    fn push_cell(&mut self, c: usize, value: Option<&Value>) -> Result<()> {
        let dtype = self.schema.columns()[c].dtype;
        match value {
            None => {
                let v = self.validity[c].get_or_insert_with(|| Bitmap::filled(self.len, true));
                v.push(false);
                // A null still occupies a typed slot.
                match &mut self.data[c] {
                    ColumnData::Int(v) => v.push(0),
                    ColumnData::Double(v) => v.push(0.0),
                    ColumnData::Str { codes, .. } => codes.push(u32::MAX),
                    ColumnData::Bool(v) => v.push(false),
                }
            }
            Some(value) => {
                if value.data_type() != dtype {
                    return Err(RelationError::TypeError {
                        expected: dtype,
                        found: value.data_type(),
                    });
                }
                if let Some(v) = &mut self.validity[c] {
                    v.push(true);
                }
                match (&mut self.data[c], value) {
                    (ColumnData::Int(v), Value::Int(x)) => v.push(*x),
                    (ColumnData::Double(v), Value::Double(x)) => v.push(*x),
                    (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                        let code = match self.interners[c].get(s) {
                            Some(&code) => code,
                            None => {
                                let code = dict.len() as u32;
                                dict.push(s.clone());
                                self.interners[c].insert(s.clone(), code);
                                code
                            }
                        };
                        codes.push(code);
                    }
                    (ColumnData::Bool(v), Value::Bool(x)) => v.push(*x),
                    _ => unreachable!("type checked above"),
                }
            }
        }
        Ok(())
    }

    /// Finishes the chunk. Null slots in string columns keep code
    /// `u32::MAX`; it is remapped to 0 when a dictionary exists so decoded
    /// chunks round-trip (the slot stays masked by the validity bitmap).
    pub fn finish(mut self) -> Chunk {
        for (c, data) in self.data.iter_mut().enumerate() {
            if let ColumnData::Str { dict, codes } = data {
                if dict.is_empty() && codes.contains(&u32::MAX) {
                    dict.push(String::new());
                }
                for code in codes.iter_mut() {
                    if *code == u32::MAX {
                        *code = 0;
                    }
                }
                let _ = c;
            }
        }
        let columns = self
            .data
            .into_iter()
            .zip(self.validity)
            .map(|(data, validity)| Column { data, validity })
            .collect();
        Chunk {
            schema: self.schema,
            columns,
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("brand", DataType::Str),
            ("price", DataType::Double),
            ("active", DataType::Bool),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            row![1, "acme", 10.0, true],
            row![2, "zeta", 20.0, false],
            row![3, "acme", 30.0, true],
        ]
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(129));
        assert_eq!(b.count_ones(), 44);
        assert_eq!(b.iter_ones().count(), 44);
        b.not_in_place();
        assert_eq!(b.count_ones(), 130 - 44);
    }

    #[test]
    fn bitmap_filled_masks_tail() {
        let b = Bitmap::filled(70, true);
        assert_eq!(b.count_ones(), 70);
        assert!(b.all_ones());
        let z = Bitmap::filled(70, false);
        assert_eq!(z.count_ones(), 0);
    }

    #[test]
    fn from_rows_round_trips() {
        let c = Chunk::from_rows(schema(), &rows()).unwrap();
        assert_eq!(c.len(), 3);
        let back: Vec<Row> = c.iter_rows().collect::<Result<_>>().unwrap();
        assert_eq!(back, rows());
    }

    #[test]
    fn dictionary_interns_repeats() {
        let c = Chunk::from_rows(schema(), &rows()).unwrap();
        let (dict, codes) = c.column(1).as_str_dict().unwrap();
        assert_eq!(dict, &["acme".to_string(), "zeta".to_string()]);
        assert_eq!(codes, &[0, 1, 0]);
    }

    #[test]
    fn typed_accessors_expose_slices() {
        let c = Chunk::from_rows(schema(), &rows()).unwrap();
        assert_eq!(c.column(0).as_int().unwrap(), &[1, 2, 3]);
        assert_eq!(c.column(2).as_double().unwrap(), &[10.0, 20.0, 30.0]);
        assert_eq!(c.column(3).as_bool().unwrap(), &[true, false, true]);
        assert!(c.column(0).as_double().is_none());
    }

    #[test]
    fn nulls_round_trip_through_values() {
        let mut b = ChunkBuilder::new(schema());
        b.push_values(&[Some(Value::Int(1)), None, Some(Value::Double(1.0)), None])
            .unwrap();
        b.push_row(&row![2, "x", 2.0, true]).unwrap();
        let c = b.finish();
        assert_eq!(c.value(0, 1), None);
        assert_eq!(c.value(0, 3), None);
        assert_eq!(c.value(1, 1), Some(Value::str("x")));
        assert!(c.row(0).is_err());
        assert_eq!(c.row(1).unwrap(), row![2, "x", 2.0, true]);
    }

    #[test]
    fn filter_keeps_masked_rows_and_rolls_dictionary() {
        let c = Chunk::from_rows(schema(), &rows()).unwrap();
        let mut mask = Bitmap::filled(3, false);
        mask.set(1, true);
        let f = c.filter(&mask).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.row(0).unwrap(), row![2, "zeta", 20.0, false]);
        // Rollover: the filtered chunk's dictionary holds only "zeta".
        let (dict, _) = f.column(1).as_str_dict().unwrap();
        assert_eq!(dict, &["zeta".to_string()]);
    }

    #[test]
    fn project_is_columnar() {
        let c = Chunk::from_rows(schema(), &rows()).unwrap();
        let p = c.project(&[2, 0]).unwrap();
        assert_eq!(p.schema().arity(), 2);
        assert_eq!(p.row(1).unwrap(), row![20.0, 2]);
    }

    #[test]
    fn codec_round_trips_incl_nulls_and_empty() {
        for chunk in [Chunk::from_rows(schema(), &rows()).unwrap(), {
            let mut b = ChunkBuilder::new(schema());
            b.push_values(&[Some(Value::Int(1)), None, None, Some(Value::Bool(true))])
                .unwrap();
            b.finish()
        }] {
            let mut e = Encoder::new();
            chunk.encode(&mut e);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let back = Chunk::decode(chunk.schema().clone(), &mut d).unwrap();
            assert_eq!(back, chunk);
            assert!(d.is_exhausted());
        }
        let empty = Chunk::from_rows(schema(), &[]).unwrap();
        let mut e = Encoder::new();
        empty.encode(&mut e);
        let bytes = e.into_bytes();
        let back = Chunk::decode(schema(), &mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn ragged_and_mistyped_chunks_rejected() {
        let ints = Column::new(ColumnData::Int(vec![1, 2]), None).unwrap();
        let bools = Column::new(ColumnData::Bool(vec![true]), None).unwrap();
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Bool)]);
        assert!(Chunk::new(s.clone(), vec![ints.clone(), bools]).is_err());
        assert!(Chunk::new(s, vec![ints.clone(), ints]).is_err());
    }

    #[test]
    fn validity_length_checked() {
        assert!(Column::new(ColumnData::Int(vec![1, 2]), Some(Bitmap::filled(3, true))).is_err());
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use crate::row::Row;
    use crate::schema::{Column as SchemaColumn, Schema};
    use proptest::prelude::*;

    fn dtype_of(tag: u8) -> DataType {
        match tag % 4 {
            0 => DataType::Int,
            1 => DataType::Double,
            2 => DataType::Str,
            _ => DataType::Bool,
        }
    }

    fn schema_of(tags: &[u8]) -> Schema {
        Schema::new(
            tags.iter()
                .enumerate()
                .map(|(i, &t)| SchemaColumn::new(format!("c{i}"), dtype_of(t)))
                .collect(),
        )
        .unwrap()
    }

    /// A random cell of the given type. Strings draw from a tiny pool so
    /// chunk dictionaries intern heavily and a filter's re-encode rolls
    /// codes over; doubles stay finite so derived chunk equality (plain
    /// `f64 ==`) never trips on NaN payloads.
    fn gen_value(rng: &mut TestRng, dtype: DataType) -> Value {
        const WORDS: [&str; 5] = ["", "a", "bb", "ccc", "a"];
        match dtype {
            DataType::Int => Value::Int(rng.next_u64() as i64),
            DataType::Double => Value::Double(loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    break v;
                }
            }),
            DataType::Str => Value::Str(WORDS[rng.below(WORDS.len() as u64) as usize].to_string()),
            DataType::Bool => Value::Bool(rng.next_u64() & 1 == 1),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        /// Null-free chunks are a lossless columnar image of their rows.
        #[test]
        fn chunk_row_round_trip(
            tags in proptest::collection::vec(0u8..4, 1..6),
            nrows in 0usize..40,
            seed in any::<u64>(),
        ) {
            let schema = schema_of(&tags);
            let mut rng = TestRng::from_seed(seed);
            let rows: Vec<Row> = (0..nrows)
                .map(|_| {
                    Row::new(tags.iter().map(|&t| gen_value(&mut rng, dtype_of(t))).collect())
                })
                .collect();
            let chunk = Chunk::from_rows(schema.clone(), &rows).unwrap();
            prop_assert_eq!(chunk.len(), rows.len());
            let back: Vec<Row> = chunk.iter_rows().collect::<Result<_>>().unwrap();
            prop_assert_eq!(&back, &rows);
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(&chunk.row(i).unwrap(), row);
            }
        }

        /// The snapshot codec reproduces any chunk byte-exactly — every
        /// data type, empty chunks, sparse and all-null validity bitmaps.
        #[test]
        fn chunk_codec_round_trip(
            tags in proptest::collection::vec(0u8..4, 1..6),
            nrows in 0usize..40,
            null_mode in 0u8..3,
            seed in any::<u64>(),
        ) {
            let schema = schema_of(&tags);
            let mut rng = TestRng::from_seed(seed);
            let mut b = ChunkBuilder::new(schema.clone());
            for _ in 0..nrows {
                let cells: Vec<Option<Value>> = tags
                    .iter()
                    .map(|&t| {
                        let null = match null_mode {
                            0 => false,
                            1 => rng.next_u64() & 3 == 0,
                            _ => true,
                        };
                        if null { None } else { Some(gen_value(&mut rng, dtype_of(t))) }
                    })
                    .collect();
                b.push_values(&cells).unwrap();
            }
            let chunk = b.finish();
            let mut e = Encoder::new();
            chunk.encode(&mut e);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let back = Chunk::decode(schema, &mut d).unwrap();
            prop_assert!(d.is_exhausted());
            prop_assert_eq!(back, chunk);
        }

        /// Filtering a chunk equals filtering its rows: the surviving rows
        /// match and the re-rolled dictionaries stay consistent.
        #[test]
        fn chunk_filter_matches_row_filter(
            tags in proptest::collection::vec(0u8..4, 1..6),
            nrows in 1usize..40,
            seed in any::<u64>(),
        ) {
            let schema = schema_of(&tags);
            let mut rng = TestRng::from_seed(seed);
            let rows: Vec<Row> = (0..nrows)
                .map(|_| {
                    Row::new(tags.iter().map(|&t| gen_value(&mut rng, dtype_of(t))).collect())
                })
                .collect();
            let chunk = Chunk::from_rows(schema, &rows).unwrap();
            let mut mask = Bitmap::filled(nrows, false);
            for i in 0..nrows {
                mask.set(i, rng.next_u64() & 1 == 1);
            }
            let filtered = chunk.filter(&mask).unwrap();
            let expect: Vec<Row> = mask.iter_ones().map(|i| rows[i].clone()).collect();
            let got: Vec<Row> = filtered.iter_rows().collect::<Result<_>>().unwrap();
            prop_assert_eq!(got, expect);
        }
    }
}

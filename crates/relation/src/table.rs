//! Base tables with single-attribute keys, stored columnar.
//!
//! A [`BaseTable`] stores rows as per-attribute typed columns (the
//! [`crate::chunk`] layout) with a tombstone bitmap and a hash index on the
//! key column (the paper assumes every base table has a single-attribute
//! key, Section 2.1). Mutations return [`Change`] records so a warehouse can
//! consume the change stream without re-reading the source — which is the
//! whole point of the paper's setting: the sources may be inaccessible.
//!
//! The columnar surface ([`BaseTable::chunks`], [`BaseTable::append_chunk`],
//! [`BaseTable::delete_by_mask`]) is the primary API; [`BaseTable::rows`]
//! materializes owned rows for the REPL/codec/oracle compatibility paths.
//! Deletions tombstone their slot and the store compacts itself once dead
//! slots dominate, so hot-row churn cannot grow the arrays without bound.

use std::collections::HashMap;

use crate::chunk::{Bitmap, Chunk, ChunkBuilder, ColumnData};
use crate::delta::Change;
use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Compact when at least this many slots are dead …
const COMPACT_MIN_DEAD: usize = 64;

/// Default row capacity of one emitted [`Chunk`].
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// A mutable base table over columnar storage.
#[derive(Debug, Clone)]
pub struct BaseTable {
    name: String,
    schema: Schema,
    key_col: usize,
    /// Slot-aligned typed columns; `Str` columns carry a growing
    /// table-level dictionary (chunks re-encode their own on emission).
    cols: Vec<ColumnData>,
    /// Dictionary interners, parallel to `cols` (empty for non-`Str`).
    interners: Vec<HashMap<String, u32>>,
    /// Live bit per slot; cleared slots are tombstones awaiting compaction.
    live: Bitmap,
    dead: usize,
    /// key value -> slot index
    index: HashMap<Value, usize>,
}

impl BaseTable {
    /// Creates an empty table. `key_col` must be a valid column index.
    pub fn new(name: impl Into<String>, schema: Schema, key_col: usize) -> Result<Self> {
        let name = name.into();
        if key_col >= schema.arity() {
            return Err(RelationError::Invalid(format!(
                "key column index {key_col} out of range for table '{name}' with arity {}",
                schema.arity()
            )));
        }
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnData::empty(c.dtype))
            .collect();
        let interners = vec![HashMap::new(); schema.arity()];
        Ok(BaseTable {
            name,
            schema,
            key_col,
            cols,
            interners,
            live: Bitmap::new(),
            dead: 0,
            index: HashMap::new(),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Index of the key column.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live.len() - self.dead
    }

    /// Returns `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical slots currently allocated (live + tombstoned). The fill
    /// ratio `len() / slots()` is what `relation.chunk_fill` reports.
    pub fn slots(&self) -> usize {
        self.live.len()
    }

    fn value_at(&self, slot: usize, col: usize) -> Value {
        match &self.cols[col] {
            ColumnData::Int(v) => Value::Int(v[slot]),
            ColumnData::Double(v) => Value::Double(v[slot]),
            ColumnData::Str { dict, codes } => Value::Str(dict[codes[slot] as usize].clone()),
            ColumnData::Bool(v) => Value::Bool(v[slot]),
        }
    }

    fn row_at(&self, slot: usize) -> Row {
        Row::new(
            (0..self.schema.arity())
                .map(|c| self.value_at(slot, c))
                .collect(),
        )
    }

    fn push_cell(&mut self, col: usize, value: &Value) {
        match (&mut self.cols[col], value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Double(v), Value::Double(x)) => v.push(*x),
            (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                let code = match self.interners[col].get(s) {
                    Some(&code) => code,
                    None => {
                        let code = dict.len() as u32;
                        dict.push(s.clone());
                        self.interners[col].insert(s.clone(), code);
                        code
                    }
                };
                codes.push(code);
            }
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(*x),
            _ => unreachable!("row was schema-checked"),
        }
    }

    fn set_cell(&mut self, slot: usize, col: usize, value: &Value) {
        match (&mut self.cols[col], value) {
            (ColumnData::Int(v), Value::Int(x)) => v[slot] = *x,
            (ColumnData::Double(v), Value::Double(x)) => v[slot] = *x,
            (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                let code = match self.interners[col].get(s) {
                    Some(&code) => code,
                    None => {
                        let code = dict.len() as u32;
                        dict.push(s.clone());
                        self.interners[col].insert(s.clone(), code);
                        code
                    }
                };
                codes[slot] = code;
            }
            (ColumnData::Bool(v), Value::Bool(x)) => v[slot] = *x,
            _ => unreachable!("row was schema-checked"),
        }
    }

    /// Iterates over all live rows (materialized) in slot order.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        self.live.iter_ones().map(|slot| self.row_at(slot))
    }

    /// Deprecated alias of [`BaseTable::rows`], kept for the PR 2/PR 5
    /// migration style: prefer [`BaseTable::chunks`] on hot paths and
    /// [`BaseTable::rows`] where single rows are genuinely needed.
    pub fn scan(&self) -> impl Iterator<Item = Row> + '_ {
        self.rows()
    }

    /// Emits the live contents as columnar [`Chunk`]s of at most
    /// `target_rows` rows each. Every chunk carries its own (freshly
    /// rolled) string dictionaries and no validity bitmaps — base tables
    /// are null-free.
    pub fn chunks(&self, target_rows: usize) -> Result<Vec<Chunk>> {
        let target = target_rows.max(1);
        let mut out = Vec::new();
        let mut b = ChunkBuilder::new(self.schema.clone());
        for row in self.rows() {
            b.push_row(&row)?;
            if b.len() >= target {
                out.push(
                    std::mem::replace(&mut b, ChunkBuilder::new(self.schema.clone())).finish(),
                );
            }
        }
        if !b.is_empty() || out.is_empty() {
            out.push(b.finish());
        }
        Ok(out)
    }

    /// Looks up a row by key value, materializing it.
    pub fn get(&self, key: &Value) -> Option<Row> {
        self.index.get(key).map(|&slot| self.row_at(slot))
    }

    /// Returns `true` if a row with this key exists.
    pub fn contains_key(&self, key: &Value) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts a row, enforcing schema and key uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<Change> {
        self.schema.check_row(&self.name, row.values())?;
        let key = row[self.key_col].clone();
        if self.index.contains_key(&key) {
            return Err(RelationError::DuplicateKey {
                table: self.name.clone(),
                key,
            });
        }
        let slot = self.live.len();
        for (c, value) in row.values().iter().enumerate() {
            self.push_cell(c, value);
        }
        self.live.push(true);
        self.index.insert(key, slot);
        Ok(Change::Insert(row))
    }

    /// Appends every row of a columnar chunk, enforcing schema and key
    /// uniqueness per row; returns the change per appended row. Fails on
    /// the first offending row, leaving the prefix inserted.
    pub fn append_chunk(&mut self, chunk: &Chunk) -> Result<Vec<Change>> {
        let mut changes = Vec::with_capacity(chunk.len());
        for row in chunk.iter_rows() {
            changes.push(self.insert(row?)?);
        }
        Ok(changes)
    }

    fn tombstone(&mut self, key: &Value) -> Result<Change> {
        let slot = *self
            .index
            .get(key)
            .ok_or_else(|| RelationError::KeyNotFound {
                table: self.name.clone(),
                key: key.clone(),
            })?;
        let removed = self.row_at(slot);
        self.index.remove(key);
        self.live.set(slot, false);
        self.dead += 1;
        Ok(Change::Delete(removed))
    }

    /// Deletes the row with the given key, returning the change.
    pub fn delete(&mut self, key: &Value) -> Result<Change> {
        let change = self.tombstone(key)?;
        self.maybe_compact();
        Ok(change)
    }

    /// Deletes every live row whose bit is set in `mask`, which indexes
    /// the [`BaseTable::rows`] enumeration (live rows in slot order).
    /// Returns one delete change per removed row, in that order.
    pub fn delete_by_mask(&mut self, mask: &Bitmap) -> Result<Vec<Change>> {
        if mask.len() != self.len() {
            return Err(RelationError::Invalid(format!(
                "delete mask length {} != live row count {}",
                mask.len(),
                self.len()
            )));
        }
        let keys: Vec<Value> = self
            .live
            .iter_ones()
            .enumerate()
            .filter(|(i, _)| mask.get(*i))
            .map(|(_, slot)| self.value_at(slot, self.key_col))
            .collect();
        let mut changes = Vec::with_capacity(keys.len());
        for key in keys {
            changes.push(self.tombstone(&key)?);
        }
        self.maybe_compact();
        Ok(changes)
    }

    /// Replaces the row with key `key` by `new_row`, in place.
    ///
    /// The new row must keep the same key value — key updates must be issued
    /// as an explicit delete followed by an insert, mirroring how the paper
    /// treats exposed updates.
    pub fn update(&mut self, key: &Value, new_row: Row) -> Result<Change> {
        self.schema.check_row(&self.name, new_row.values())?;
        if &new_row[self.key_col] != key {
            return Err(RelationError::Invalid(format!(
                "update on table '{}' changes the key from {key} to {}; \
                 issue delete+insert instead",
                self.name, new_row[self.key_col]
            )));
        }
        let slot = *self
            .index
            .get(key)
            .ok_or_else(|| RelationError::KeyNotFound {
                table: self.name.clone(),
                key: key.clone(),
            })?;
        let old = self.row_at(slot);
        for (c, value) in new_row.values().iter().enumerate() {
            self.set_cell(slot, c, value);
        }
        Ok(Change::Update { old, new: new_row })
    }

    /// Rewrites the columns with live slots only once tombstones dominate,
    /// re-interning string dictionaries from scratch so dictionaries of
    /// long-churning tables do not accumulate dead entries.
    fn maybe_compact(&mut self) {
        if self.dead < COMPACT_MIN_DEAD || self.dead * 2 < self.live.len() {
            return;
        }
        let mut cols: Vec<ColumnData> = self
            .schema
            .columns()
            .iter()
            .map(|c| ColumnData::empty(c.dtype))
            .collect();
        let mut interners = vec![HashMap::new(); self.schema.arity()];
        let mut index = HashMap::with_capacity(self.index.len());
        let mut next = 0usize;
        for slot in self.live.iter_ones() {
            for c in 0..self.schema.arity() {
                let value = self.value_at(slot, c);
                match (&mut cols[c], value) {
                    (ColumnData::Int(v), Value::Int(x)) => v.push(x),
                    (ColumnData::Double(v), Value::Double(x)) => v.push(x),
                    (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                        let interner: &mut HashMap<String, u32> = &mut interners[c];
                        let code = match interner.get(&s) {
                            Some(&code) => code,
                            None => {
                                let code = dict.len() as u32;
                                dict.push(s.clone());
                                interner.insert(s, code);
                                code
                            }
                        };
                        codes.push(code);
                    }
                    (ColumnData::Bool(v), Value::Bool(x)) => v.push(x),
                    _ => unreachable!("storage is schema-typed"),
                }
            }
            index.insert(self.value_at(slot, self.key_col), next);
            next += 1;
        }
        self.cols = cols;
        self.interners = interners;
        self.live = Bitmap::filled(next, true);
        self.dead = 0;
        self.index = index;
    }

    /// Estimated storage in the *paper's* model: `rows × fields × 4 bytes`.
    pub fn paper_bytes(&self) -> u64 {
        self.len() as u64 * self.schema.arity() as u64 * Value::PAPER_FIELD_BYTES
    }

    /// Estimated actual in-memory footprint of the columnar storage.
    pub fn heap_bytes(&self) -> u64 {
        let slots = self.slots() as u64;
        let mut bytes = slots.div_ceil(8); // live bitmap
        for col in &self.cols {
            bytes += match col {
                ColumnData::Int(_) | ColumnData::Double(_) => slots * 8,
                ColumnData::Bool(_) => slots,
                ColumnData::Str { dict, .. } => {
                    slots * 4 + dict.iter().map(|s| s.capacity() as u64 + 24).sum::<u64>()
                }
            };
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn product_table() -> BaseTable {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("brand", DataType::Str),
            ("category", DataType::Str),
        ]);
        BaseTable::new("product", schema, 0).unwrap()
    }

    #[test]
    fn new_rejects_bad_key_col() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        assert!(BaseTable::new("t", schema, 3).is_err());
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = product_table();
        t.insert(row![1, "acme", "food"]).unwrap();
        t.insert(row![2, "zeta", "drink"]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&Value::Int(1)), Some(row![1, "acme", "food"]));
        assert!(t.contains_key(&Value::Int(2)));
        assert!(!t.contains_key(&Value::Int(3)));
    }

    #[test]
    fn insert_rejects_duplicate_key() {
        let mut t = product_table();
        t.insert(row![1, "acme", "food"]).unwrap();
        let e = t.insert(row![1, "other", "food"]).unwrap_err();
        assert!(matches!(e, RelationError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_rejects_schema_mismatch() {
        let mut t = product_table();
        assert!(t.insert(row![1, 2, 3]).is_err());
        assert!(t.insert(row![1, "acme"]).is_err());
    }

    #[test]
    fn delete_returns_old_row_and_keeps_lookups() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        t.insert(row![2, "b", "y"]).unwrap();
        t.insert(row![3, "c", "z"]).unwrap();
        let c = t.delete(&Value::Int(1)).unwrap();
        assert_eq!(c, Change::Delete(row![1, "a", "x"]));
        assert_eq!(t.get(&Value::Int(3)), Some(row![3, "c", "z"]));
        assert_eq!(t.get(&Value::Int(2)), Some(row![2, "b", "y"]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_missing_key_errors() {
        let mut t = product_table();
        assert!(matches!(
            t.delete(&Value::Int(9)),
            Err(RelationError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn update_replaces_row() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        let c = t.update(&Value::Int(1), row![1, "a2", "x"]).unwrap();
        assert_eq!(
            c,
            Change::Update {
                old: row![1, "a", "x"],
                new: row![1, "a2", "x"]
            }
        );
        assert_eq!(t.get(&Value::Int(1)), Some(row![1, "a2", "x"]));
    }

    #[test]
    fn update_cannot_change_key() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        assert!(t.update(&Value::Int(1), row![2, "a", "x"]).is_err());
    }

    #[test]
    fn update_missing_key_errors() {
        let mut t = product_table();
        assert!(t.update(&Value::Int(1), row![1, "a", "x"]).is_err());
    }

    #[test]
    fn paper_bytes_matches_model() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        t.insert(row![2, "b", "y"]).unwrap();
        // 2 rows × 3 fields × 4 bytes
        assert_eq!(t.paper_bytes(), 24);
    }

    #[test]
    fn chunks_emit_live_rows_with_rolled_dictionaries() {
        let mut t = product_table();
        for i in 0..10 {
            t.insert(row![i, format!("b{}", i % 2), "x"]).unwrap();
        }
        t.delete(&Value::Int(4)).unwrap();
        let chunks = t.chunks(4).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(Chunk::len).sum::<usize>(), 9);
        // Each chunk's dictionary holds only its own strings.
        let (dict, _) = chunks[0].column(1).as_str_dict().unwrap();
        assert!(dict.len() <= 2);
        let all: Vec<Row> = chunks
            .iter()
            .flat_map(|c| c.iter_rows())
            .collect::<crate::error::Result<_>>()
            .unwrap();
        assert_eq!(all.len(), 9);
        assert!(!all.contains(&row![4, "b0", "x"]));
    }

    #[test]
    fn append_chunk_batch_inserts() {
        let mut t = product_table();
        let chunk =
            Chunk::from_rows(t.schema().clone(), &[row![1, "a", "x"], row![2, "b", "y"]]).unwrap();
        let changes = t.append_chunk(&chunk).unwrap();
        assert_eq!(changes.len(), 2);
        assert_eq!(t.len(), 2);
        // Duplicate keys fail partway through.
        assert!(t.append_chunk(&chunk).is_err());
    }

    #[test]
    fn delete_by_mask_removes_masked_rows() {
        let mut t = product_table();
        for i in 0..5 {
            t.insert(row![i, "a", "x"]).unwrap();
        }
        let mut mask = Bitmap::filled(5, false);
        mask.set(1, true);
        mask.set(3, true);
        let changes = t.delete_by_mask(&mask).unwrap();
        assert_eq!(changes.len(), 2);
        assert_eq!(t.len(), 3);
        assert!(!t.contains_key(&Value::Int(1)));
        assert!(!t.contains_key(&Value::Int(3)));
        assert!(t.contains_key(&Value::Int(2)));
        // Mask length must match the live row count.
        assert!(t.delete_by_mask(&Bitmap::filled(5, false)).is_err());
    }

    #[test]
    fn churn_triggers_compaction_and_preserves_contents() {
        let mut t = product_table();
        for i in 0..200 {
            t.insert(row![i, format!("b{i}"), "x"]).unwrap();
        }
        for i in 0..150 {
            t.delete(&Value::Int(i)).unwrap();
        }
        // Compaction must have rewritten the store densely.
        assert!(t.slots() < 200);
        assert_eq!(t.len(), 50);
        for i in 150..200 {
            assert_eq!(t.get(&Value::Int(i)), Some(row![i, format!("b{i}"), "x"]));
        }
        // Inserts keep working against the compacted store.
        t.insert(row![500, "new", "x"]).unwrap();
        assert_eq!(t.get(&Value::Int(500)), Some(row![500, "new", "x"]));
    }
}

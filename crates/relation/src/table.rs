//! Base tables with single-attribute keys.
//!
//! A [`BaseTable`] stores rows in insertion order with a hash index on the
//! key column (the paper assumes every base table has a single-attribute
//! key, Section 2.1). Mutations return [`Change`] records so a warehouse can
//! consume the change stream without re-reading the source — which is the
//! whole point of the paper's setting: the sources may be inaccessible.

use std::collections::HashMap;

use crate::delta::Change;
use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A mutable base table.
#[derive(Debug, Clone)]
pub struct BaseTable {
    name: String,
    schema: Schema,
    key_col: usize,
    rows: Vec<Row>,
    /// key value -> index into `rows`
    index: HashMap<Value, usize>,
}

impl BaseTable {
    /// Creates an empty table. `key_col` must be a valid column index.
    pub fn new(name: impl Into<String>, schema: Schema, key_col: usize) -> Result<Self> {
        let name = name.into();
        if key_col >= schema.arity() {
            return Err(RelationError::Invalid(format!(
                "key column index {key_col} out of range for table '{name}' with arity {}",
                schema.arity()
            )));
        }
        Ok(BaseTable {
            name,
            schema,
            key_col,
            rows: Vec::new(),
            index: HashMap::new(),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Index of the key column.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over all rows in unspecified order.
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Looks up a row by key value.
    pub fn get(&self, key: &Value) -> Option<&Row> {
        self.index.get(key).map(|&i| &self.rows[i])
    }

    /// Returns `true` if a row with this key exists.
    pub fn contains_key(&self, key: &Value) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts a row, enforcing schema and key uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<Change> {
        self.schema.check_row(&self.name, row.values())?;
        let key = row[self.key_col].clone();
        if self.index.contains_key(&key) {
            return Err(RelationError::DuplicateKey {
                table: self.name.clone(),
                key,
            });
        }
        self.index.insert(key, self.rows.len());
        self.rows.push(row.clone());
        Ok(Change::Insert(row))
    }

    /// Deletes the row with the given key, returning the change.
    pub fn delete(&mut self, key: &Value) -> Result<Change> {
        let idx = *self
            .index
            .get(key)
            .ok_or_else(|| RelationError::KeyNotFound {
                table: self.name.clone(),
                key: key.clone(),
            })?;
        self.index.remove(key);
        let removed = self.rows.swap_remove(idx);
        // Fix up the index entry of the row that was swapped into `idx`.
        if idx < self.rows.len() {
            let moved_key = self.rows[idx][self.key_col].clone();
            self.index.insert(moved_key, idx);
        }
        Ok(Change::Delete(removed))
    }

    /// Replaces the row with key `key` by `new_row`.
    ///
    /// The new row must keep the same key value — key updates must be issued
    /// as an explicit delete followed by an insert, mirroring how the paper
    /// treats exposed updates.
    pub fn update(&mut self, key: &Value, new_row: Row) -> Result<Change> {
        self.schema.check_row(&self.name, new_row.values())?;
        if &new_row[self.key_col] != key {
            return Err(RelationError::Invalid(format!(
                "update on table '{}' changes the key from {key} to {}; \
                 issue delete+insert instead",
                self.name, new_row[self.key_col]
            )));
        }
        let idx = *self
            .index
            .get(key)
            .ok_or_else(|| RelationError::KeyNotFound {
                table: self.name.clone(),
                key: key.clone(),
            })?;
        let old = std::mem::replace(&mut self.rows[idx], new_row.clone());
        Ok(Change::Update { old, new: new_row })
    }

    /// Estimated storage in the *paper's* model: `rows × fields × 4 bytes`.
    pub fn paper_bytes(&self) -> u64 {
        self.rows.len() as u64 * self.schema.arity() as u64 * Value::PAPER_FIELD_BYTES
    }

    /// Estimated actual in-memory footprint.
    pub fn heap_bytes(&self) -> u64 {
        self.rows.iter().map(Row::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn product_table() -> BaseTable {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("brand", DataType::Str),
            ("category", DataType::Str),
        ]);
        BaseTable::new("product", schema, 0).unwrap()
    }

    #[test]
    fn new_rejects_bad_key_col() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        assert!(BaseTable::new("t", schema, 3).is_err());
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = product_table();
        t.insert(row![1, "acme", "food"]).unwrap();
        t.insert(row![2, "zeta", "drink"]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&Value::Int(1)), Some(&row![1, "acme", "food"]));
        assert!(t.contains_key(&Value::Int(2)));
        assert!(!t.contains_key(&Value::Int(3)));
    }

    #[test]
    fn insert_rejects_duplicate_key() {
        let mut t = product_table();
        t.insert(row![1, "acme", "food"]).unwrap();
        let e = t.insert(row![1, "other", "food"]).unwrap_err();
        assert!(matches!(e, RelationError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_rejects_schema_mismatch() {
        let mut t = product_table();
        assert!(t.insert(row![1, 2, 3]).is_err());
        assert!(t.insert(row![1, "acme"]).is_err());
    }

    #[test]
    fn delete_returns_old_row_and_fixes_index() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        t.insert(row![2, "b", "y"]).unwrap();
        t.insert(row![3, "c", "z"]).unwrap();
        let c = t.delete(&Value::Int(1)).unwrap();
        assert_eq!(c, Change::Delete(row![1, "a", "x"]));
        // swap_remove moved row 3 into slot 0; it must still be findable.
        assert_eq!(t.get(&Value::Int(3)), Some(&row![3, "c", "z"]));
        assert_eq!(t.get(&Value::Int(2)), Some(&row![2, "b", "y"]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_missing_key_errors() {
        let mut t = product_table();
        assert!(matches!(
            t.delete(&Value::Int(9)),
            Err(RelationError::KeyNotFound { .. })
        ));
    }

    #[test]
    fn update_replaces_row() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        let c = t.update(&Value::Int(1), row![1, "a2", "x"]).unwrap();
        assert_eq!(
            c,
            Change::Update {
                old: row![1, "a", "x"],
                new: row![1, "a2", "x"]
            }
        );
        assert_eq!(t.get(&Value::Int(1)), Some(&row![1, "a2", "x"]));
    }

    #[test]
    fn update_cannot_change_key() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        assert!(t.update(&Value::Int(1), row![2, "a", "x"]).is_err());
    }

    #[test]
    fn update_missing_key_errors() {
        let mut t = product_table();
        assert!(t.update(&Value::Int(1), row![1, "a", "x"]).is_err());
    }

    #[test]
    fn paper_bytes_matches_model() {
        let mut t = product_table();
        t.insert(row![1, "a", "x"]).unwrap();
        t.insert(row![2, "b", "y"]).unwrap();
        // 2 rows × 3 fields × 4 bytes
        assert_eq!(t.paper_bytes(), 24);
    }
}

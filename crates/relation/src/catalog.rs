//! Catalogs (schema-level metadata) and databases (instances).
//!
//! A [`Catalog`] records table definitions, their single-attribute keys,
//! referential integrity constraints and each table's *update contract*:
//! the set of columns that source updates are allowed to modify. The paper
//! calls an update *exposed* when it can change attributes involved in
//! selection or join conditions of a view (Section 2.1); exposure is
//! therefore a property of a (table, view) pair and is computed in
//! `md-core` from the update contract recorded here.
//!
//! A [`Database`] pairs a catalog with table instances and optionally
//! enforces referential integrity on mutation, mimicking the operational
//! sources the warehouse cannot query.

use std::collections::BTreeSet;
use std::fmt;

use crate::delta::Change;
use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::table::BaseTable;
use crate::value::Value;

/// Identifier of a table within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Schema-level definition of a base table.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name, unique in the catalog.
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// Index of the single-attribute key column.
    pub key_col: usize,
    /// Columns that updates from the source may modify. The key column is
    /// never updatable (key changes arrive as delete+insert). By default all
    /// non-key columns are updatable — the most pessimistic contract.
    pub updatable_columns: BTreeSet<usize>,
    /// Whether the source guarantees this table only ever receives
    /// insertions — the paper's *old detail data* regime (Section 4),
    /// under which the CSMA definition relaxes because only insertions
    /// must be considered. Implies an empty update contract.
    pub insert_only: bool,
}

impl TableDef {
    /// Name of the key column.
    pub fn key_name(&self) -> &str {
        &self.schema.column(self.key_col).name
    }
}

/// A referential integrity constraint `from.from_col -> to.key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub from: TableId,
    /// Referencing (foreign key) column in `from`.
    pub from_col: usize,
    /// Referenced table; the referenced column is always its key.
    pub to: TableId,
}

/// Schema-level metadata: table definitions plus constraints.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
    foreign_keys: Vec<ForeignKey>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a table with the default (all non-key columns) update contract.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        key_col: usize,
    ) -> Result<TableId> {
        let name = name.into();
        if self.table_id(&name).is_some() {
            return Err(RelationError::Invalid(format!(
                "table '{name}' already exists in catalog"
            )));
        }
        if key_col >= schema.arity() {
            return Err(RelationError::Invalid(format!(
                "key column index {key_col} out of range for table '{name}'"
            )));
        }
        let updatable: BTreeSet<usize> = (0..schema.arity()).filter(|&c| c != key_col).collect();
        self.tables.push(TableDef {
            name,
            schema,
            key_col,
            updatable_columns: updatable,
            insert_only: false,
        });
        Ok(TableId(self.tables.len() - 1))
    }

    /// Restricts a table's update contract to exactly `columns`.
    ///
    /// Declaring a tighter contract (e.g. "dimension rows are append-only,
    /// only `manager` may change") is how a deployment lets the derivation
    /// prove the absence of exposed updates and thereby enables join
    /// reductions (paper Section 2.2).
    pub fn set_updatable_columns(&mut self, table: TableId, columns: &[usize]) -> Result<()> {
        let def = self.def_mut(table)?;
        for &c in columns {
            if c >= def.schema.arity() {
                return Err(RelationError::Invalid(format!(
                    "updatable column {c} out of range for table '{}'",
                    def.name
                )));
            }
            if c == def.key_col {
                return Err(RelationError::Invalid(format!(
                    "key column of table '{}' cannot be updatable",
                    def.name
                )));
            }
        }
        def.updatable_columns = columns.iter().copied().collect();
        // Granting any mutation capability revokes an insert-only pledge;
        // set_insert_only re-establishes it explicitly.
        def.insert_only = false;
        Ok(())
    }

    /// Declares a table as never receiving updates by emptying its update
    /// contract (deletions remain possible).
    pub fn set_append_only(&mut self, table: TableId) -> Result<()> {
        self.set_updatable_columns(table, &[])
    }

    /// Declares a table *insert-only* (the paper's old-detail-data regime,
    /// Section 4): no updates and no deletions ever arrive from the
    /// source. Implies an empty update contract and lets the derivation
    /// relax the CSMA requirements (`MIN`/`MAX` become maintainable).
    pub fn set_insert_only(&mut self, table: TableId) -> Result<()> {
        self.set_updatable_columns(table, &[])?;
        self.def_mut(table)?.insert_only = true;
        Ok(())
    }

    /// Adds a referential integrity constraint from `from.from_col` to the
    /// key of `to`. The referencing column must have the same type as the
    /// referenced key.
    pub fn add_foreign_key(&mut self, from: TableId, from_col: usize, to: TableId) -> Result<()> {
        let from_def = self.def(from)?;
        let to_def = self.def(to)?;
        if from_col >= from_def.schema.arity() {
            return Err(RelationError::Invalid(format!(
                "foreign key column {from_col} out of range for table '{}'",
                from_def.name
            )));
        }
        let from_ty = from_def.schema.column(from_col).dtype;
        let to_ty = to_def.schema.column(to_def.key_col).dtype;
        if from_ty != to_ty {
            return Err(RelationError::Invalid(format!(
                "foreign key type mismatch: {}.{} is {from_ty}, {}.{} is {to_ty}",
                from_def.name,
                from_def.schema.column(from_col).name,
                to_def.name,
                to_def.key_name(),
            )));
        }
        self.foreign_keys.push(ForeignKey { from, from_col, to });
        Ok(())
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Returns `true` when no tables are defined.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// All table ids.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> {
        (0..self.tables.len()).map(TableId)
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|t| t.name == name).map(TableId)
    }

    /// Resolves a table name, returning an error when absent.
    pub fn resolve_table(&self, name: &str) -> Result<TableId> {
        self.table_id(name)
            .ok_or_else(|| RelationError::UnknownTable(name.to_owned()))
    }

    /// The definition of `table`.
    pub fn def(&self, table: TableId) -> Result<&TableDef> {
        self.tables
            .get(table.0)
            .ok_or_else(|| RelationError::Invalid(format!("no table with id {table}")))
    }

    fn def_mut(&mut self, table: TableId) -> Result<&mut TableDef> {
        self.tables
            .get_mut(table.0)
            .ok_or_else(|| RelationError::Invalid(format!("no table with id {table}")))
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Returns the foreign key constraint from `from.from_col` to `to`, if
    /// one is declared.
    pub fn foreign_key(&self, from: TableId, from_col: usize, to: TableId) -> Option<&ForeignKey> {
        self.foreign_keys
            .iter()
            .find(|fk| fk.from == from && fk.from_col == from_col && fk.to == to)
    }

    /// Foreign keys whose referencing side is `from`.
    pub fn foreign_keys_from(&self, from: TableId) -> impl Iterator<Item = &ForeignKey> {
        self.foreign_keys.iter().filter(move |fk| fk.from == from)
    }

    /// Foreign keys whose referenced side is `to`.
    pub fn foreign_keys_to(&self, to: TableId) -> impl Iterator<Item = &ForeignKey> {
        self.foreign_keys.iter().filter(move |fk| fk.to == to)
    }
}

/// A catalog plus table instances: the simulated operational data store.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<BaseTable>,
    enforce_ri: bool,
}

impl Database {
    /// Creates an empty database over `catalog` with referential integrity
    /// enforcement enabled.
    pub fn new(catalog: Catalog) -> Self {
        let tables = catalog
            .tables
            .iter()
            .map(|d| {
                BaseTable::new(d.name.clone(), d.schema.clone(), d.key_col)
                    .expect("catalog validated key column")
            })
            .collect();
        Database {
            catalog,
            tables,
            enforce_ri: true,
        }
    }

    /// Disables referential integrity checks (used by tests that need to
    /// construct violating states, and by bulk loaders that validate
    /// afterwards).
    pub fn set_enforce_ri(&mut self, enforce: bool) {
        self.enforce_ri = enforce;
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Borrow a table instance.
    pub fn table(&self, id: TableId) -> &BaseTable {
        &self.tables[id.0]
    }

    /// Borrow a table instance by name.
    pub fn table_by_name(&self, name: &str) -> Result<&BaseTable> {
        Ok(&self.tables[self.catalog.resolve_table(name)?.0])
    }

    /// Inserts a row into `table`, enforcing schema, key and (when enabled)
    /// referential integrity.
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<Change> {
        if self.enforce_ri {
            for fk in self.catalog.foreign_keys_from(table) {
                let v = &row[fk.from_col];
                if !self.tables[fk.to.0].contains_key(v) {
                    return Err(self.ri_error(fk, format!("referenced key {v} does not exist")));
                }
            }
        }
        self.tables[table.0].insert(row)
    }

    /// Deletes the row with key `key` from `table`, enforcing that no rows
    /// still reference it.
    pub fn delete(&mut self, table: TableId, key: &Value) -> Result<Change> {
        if self.catalog.def(table)?.insert_only {
            return Err(RelationError::Invalid(format!(
                "table '{}' is declared insert-only; deletions are not allowed",
                self.catalog.def(table)?.name
            )));
        }
        if self.enforce_ri {
            for fk in self.catalog.foreign_keys_to(table) {
                let referenced = self.tables[fk.from.0]
                    .rows()
                    .any(|r| &r[fk.from_col] == key);
                if referenced {
                    return Err(self.ri_error(
                        fk,
                        format!(
                            "key {key} is still referenced by '{}'",
                            self.tables[fk.from.0].name()
                        ),
                    ));
                }
            }
        }
        self.tables[table.0].delete(key)
    }

    /// Updates the row with key `key` in `table`, enforcing the table's
    /// update contract and referential integrity of changed foreign keys.
    pub fn update(&mut self, table: TableId, key: &Value, new_row: Row) -> Result<Change> {
        let def = self.catalog.def(table)?;
        if def.insert_only {
            return Err(RelationError::Invalid(format!(
                "table '{}' is declared insert-only; updates are not allowed",
                def.name
            )));
        }
        let old = self.tables[table.0]
            .get(key)
            .ok_or_else(|| RelationError::KeyNotFound {
                table: def.name.clone(),
                key: key.clone(),
            })?
            .clone();
        // Contract check: only declared-updatable columns may differ.
        for c in 0..def.schema.arity() {
            if old[c] != new_row[c] && !def.updatable_columns.contains(&c) {
                return Err(RelationError::Invalid(format!(
                    "update on '{}' modifies column '{}' outside the update contract",
                    def.name,
                    def.schema.column(c).name
                )));
            }
        }
        if self.enforce_ri {
            for fk in self.catalog.foreign_keys_from(table) {
                if old[fk.from_col] != new_row[fk.from_col] {
                    let v = &new_row[fk.from_col];
                    if !self.tables[fk.to.0].contains_key(v) {
                        return Err(self.ri_error(fk, format!("referenced key {v} does not exist")));
                    }
                }
            }
        }
        self.tables[table.0].update(key, new_row)
    }

    fn ri_error(&self, fk: &ForeignKey, detail: String) -> RelationError {
        let from = self
            .catalog
            .def(fk.from)
            .map(|d| d.name.clone())
            .unwrap_or_default();
        let to = self
            .catalog
            .def(fk.to)
            .map(|d| d.name.clone())
            .unwrap_or_default();
        let col = self
            .catalog
            .def(fk.from)
            .map(|d| d.schema.column(fk.from_col).name.clone())
            .unwrap_or_default();
        RelationError::ReferentialIntegrity {
            constraint: format!("{from}.{col} -> {to}"),
            detail,
        }
    }

    /// Validates every declared foreign key over the full instance. Useful
    /// after bulk loads with enforcement disabled.
    pub fn validate_ri(&self) -> Result<()> {
        for fk in self.catalog.foreign_keys() {
            for row in self.tables[fk.from.0].rows() {
                let v = &row[fk.from_col];
                if !self.tables[fk.to.0].contains_key(v) {
                    return Err(self.ri_error(fk, format!("dangling reference {v}")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn star_catalog() -> (Catalog, TableId, TableId) {
        let mut cat = Catalog::new();
        let product = cat
            .add_table(
                "product",
                Schema::from_pairs(&[("id", DataType::Int), ("brand", DataType::Str)]),
                0,
            )
            .unwrap();
        let sale = cat
            .add_table(
                "sale",
                Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("productid", DataType::Int),
                    ("price", DataType::Double),
                ]),
                0,
            )
            .unwrap();
        cat.add_foreign_key(sale, 1, product).unwrap();
        (cat, product, sale)
    }

    #[test]
    fn add_table_assigns_ids_and_rejects_duplicates() {
        let mut cat = Catalog::new();
        let t = cat
            .add_table("t", Schema::from_pairs(&[("id", DataType::Int)]), 0)
            .unwrap();
        assert_eq!(t, TableId(0));
        assert!(cat
            .add_table("t", Schema::from_pairs(&[("id", DataType::Int)]), 0)
            .is_err());
    }

    #[test]
    fn default_update_contract_excludes_key() {
        let (cat, product, _) = star_catalog();
        let def = cat.def(product).unwrap();
        assert!(!def.updatable_columns.contains(&0));
        assert!(def.updatable_columns.contains(&1));
    }

    #[test]
    fn update_contract_can_be_tightened() {
        let (mut cat, product, _) = star_catalog();
        cat.set_append_only(product).unwrap();
        assert!(cat.def(product).unwrap().updatable_columns.is_empty());
        assert!(cat.set_updatable_columns(product, &[0]).is_err()); // key
        assert!(cat.set_updatable_columns(product, &[9]).is_err()); // range
    }

    #[test]
    fn foreign_key_type_mismatch_rejected() {
        let mut cat = Catalog::new();
        let a = cat
            .add_table("a", Schema::from_pairs(&[("id", DataType::Str)]), 0)
            .unwrap();
        let b = cat
            .add_table(
                "b",
                Schema::from_pairs(&[("id", DataType::Int), ("aref", DataType::Int)]),
                0,
            )
            .unwrap();
        assert!(cat.add_foreign_key(b, 1, a).is_err());
    }

    #[test]
    fn database_insert_enforces_ri() {
        let (cat, product, sale) = star_catalog();
        let mut db = Database::new(cat);
        // Sale referencing a missing product is rejected.
        let e = db.insert(sale, row![1, 99, 5.0]).unwrap_err();
        assert!(matches!(e, RelationError::ReferentialIntegrity { .. }));
        db.insert(product, row![99, "acme"]).unwrap();
        db.insert(sale, row![1, 99, 5.0]).unwrap();
    }

    #[test]
    fn database_delete_enforces_ri() {
        let (cat, product, sale) = star_catalog();
        let mut db = Database::new(cat);
        db.insert(product, row![1, "acme"]).unwrap();
        db.insert(sale, row![10, 1, 5.0]).unwrap();
        assert!(db.delete(product, &Value::Int(1)).is_err());
        db.delete(sale, &Value::Int(10)).unwrap();
        db.delete(product, &Value::Int(1)).unwrap();
    }

    #[test]
    fn database_update_enforces_contract() {
        let (mut cat, product, sale) = star_catalog();
        // sale may only update price (column 2), not productid.
        cat.set_updatable_columns(sale, &[2]).unwrap();
        let mut db = Database::new(cat);
        db.insert(product, row![1, "acme"]).unwrap();
        db.insert(sale, row![10, 1, 5.0]).unwrap();
        db.update(sale, &Value::Int(10), row![10, 1, 6.0]).unwrap();
        let e = db
            .update(sale, &Value::Int(10), row![10, 2, 6.0])
            .unwrap_err();
        assert!(e.to_string().contains("update contract"));
    }

    #[test]
    fn database_update_checks_changed_fk() {
        let (cat, product, sale) = star_catalog();
        let mut db = Database::new(cat);
        db.insert(product, row![1, "acme"]).unwrap();
        db.insert(sale, row![10, 1, 5.0]).unwrap();
        let e = db
            .update(sale, &Value::Int(10), row![10, 7, 5.0])
            .unwrap_err();
        assert!(matches!(e, RelationError::ReferentialIntegrity { .. }));
    }

    #[test]
    fn validate_ri_detects_dangling_after_unchecked_load() {
        let (cat, _, sale) = star_catalog();
        let mut db = Database::new(cat);
        db.set_enforce_ri(false);
        db.insert(sale, row![1, 42, 1.0]).unwrap();
        assert!(db.validate_ri().is_err());
    }

    #[test]
    fn table_lookup_by_name() {
        let (cat, _, _) = star_catalog();
        let db = Database::new(cat);
        assert!(db.table_by_name("sale").is_ok());
        assert!(db.table_by_name("nope").is_err());
    }
}

//! # `md-relation` — storage substrate for *mindetail*
//!
//! The bottom layer of the [mindetail](https://example.org/mindetail)
//! reproduction of *Akinde, Jensen & Böhlen, "Minimizing Detail Data in Data
//! Warehouses" (EDBT 1998)*. It provides everything the paper assumes of the
//! operational data sources:
//!
//! * typed, null-free [`value::Value`]s and [`schema::Schema`]s,
//! * [`table::BaseTable`]s with single-attribute keys,
//! * [`catalog::Catalog`]s with referential-integrity constraints and
//!   per-table *update contracts* (which columns updates may modify — the
//!   input to the exposed-update analysis in `md-core`),
//! * [`delta::Change`]/[`delta::Delta`] change streams that mutations emit,
//!   so a warehouse can be maintained without ever re-reading a source, and
//! * bag-semantics relations ([`bag::Bag`]) used by the algebra layer.
//!
//! The design goal is fidelity to the paper's model (Section 2.1): no nulls,
//! single-attribute keys, key joins, explicit insertion/deletion/update
//! streams with updates splittable into delete+insert.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bag;
pub mod catalog;
pub mod chunk;
pub mod codec;
pub mod delta;
pub mod error;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use bag::Bag;
pub use catalog::{Catalog, Database, ForeignKey, TableDef, TableId};
pub use chunk::{Bitmap, Chunk, ChunkBuilder, Column as ChunkColumn, ColumnData};
pub use codec::{crc32, Decoder, Encoder};
pub use delta::{Change, Delta};
pub use error::{RelationError, Result};
pub use row::Row;
pub use schema::{Column, Schema};
pub use table::{BaseTable, DEFAULT_CHUNK_ROWS};
pub use value::{total_cmp_nan_last, DataType, Value};

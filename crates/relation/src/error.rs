//! Error type for the storage substrate.

use std::fmt;

use crate::value::{DataType, Value};

/// Result alias used throughout `md-relation`.
pub type Result<T, E = RelationError> = std::result::Result<T, E>;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// A value of one type was used where another was required.
    TypeError {
        /// The type the operation required.
        expected: DataType,
        /// The type that was actually supplied.
        found: DataType,
    },
    /// Two values of incompatible types were compared or combined.
    Incomparable {
        /// Type on the left-hand side.
        left: DataType,
        /// Type on the right-hand side.
        right: DataType,
    },
    /// A row's arity or column types did not match the table schema.
    SchemaMismatch {
        /// The table involved.
        table: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// An insert would duplicate an existing key value.
    DuplicateKey {
        /// The table involved.
        table: String,
        /// The offending key value.
        key: Value,
    },
    /// A lookup, delete or update referenced a key that does not exist.
    KeyNotFound {
        /// The table involved.
        table: String,
        /// The missing key value.
        key: Value,
    },
    /// A named table does not exist in the catalog.
    UnknownTable(String),
    /// A named column does not exist in a table.
    UnknownColumn {
        /// The table that was searched.
        table: String,
        /// The column that was not found.
        column: String,
    },
    /// A change would violate a declared referential integrity constraint.
    ReferentialIntegrity {
        /// Constraint description, e.g. `sale.productid -> product.id`.
        constraint: String,
        /// Explanation of the violation.
        detail: String,
    },
    /// The paper assumes null-free base data; a null-like condition arose.
    NullNotSupported,
    /// Catch-all for invalid arguments (e.g. key column out of range).
    Invalid(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::TypeError { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            RelationError::Incomparable { left, right } => {
                write!(f, "cannot compare or combine {left} with {right}")
            }
            RelationError::SchemaMismatch { table, detail } => {
                write!(f, "schema mismatch on table '{table}': {detail}")
            }
            RelationError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table '{table}'")
            }
            RelationError::KeyNotFound { table, key } => {
                write!(f, "key {key} not found in table '{table}'")
            }
            RelationError::UnknownTable(name) => write!(f, "unknown table '{name}'"),
            RelationError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            RelationError::ReferentialIntegrity { constraint, detail } => {
                write!(
                    f,
                    "referential integrity violation ({constraint}): {detail}"
                )
            }
            RelationError::NullNotSupported => {
                write!(
                    f,
                    "null values are not supported (paper assumption, Section 2.1)"
                )
            }
            RelationError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::DuplicateKey {
            table: "sale".into(),
            key: Value::Int(7),
        };
        assert_eq!(e.to_string(), "duplicate key 7 in table 'sale'");

        let e = RelationError::UnknownColumn {
            table: "time".into(),
            column: "quarter".into(),
        };
        assert!(e.to_string().contains("quarter"));
        assert!(e.to_string().contains("time"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelationError::NullNotSupported);
    }
}

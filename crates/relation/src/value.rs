//! Typed values stored in relations.
//!
//! The paper assumes base tables contain no null values (Section 2.1), so
//! [`Value`] has no null variant; operations that would produce an undefined
//! result return a [`TypeError`](crate::error::RelationError::TypeError)
//! instead.
//!
//! `Value` implements total `Eq`/`Ord`/`Hash` — including for doubles, which
//! are compared with [`f64::total_cmp`] and hashed by their bit pattern — so
//! values can serve as hash-map keys for group-by processing and key indexes.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{RelationError, Result};

/// The data types supported by the engine.
///
/// This is deliberately a small set: the paper's examples use integers
/// (surrogate keys, counts), floating point measures (prices) and strings
/// (dimension attributes such as `brand` or `city`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Double,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Returns `true` for types on which `SUM`/`AVG` are defined.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Double)
    }

    /// Human-readable name, used in error messages and SQL rendering.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOLEAN",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single typed value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Compared with total order, hashed by bits.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Double(_) => DataType::Double,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the integer payload, or a type error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(RelationError::TypeError {
                expected: DataType::Int,
                found: other.data_type(),
            }),
        }
    }

    /// Returns the float payload, coercing integers, or a type error.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) => Ok(*i as f64),
            other => Err(RelationError::TypeError {
                expected: DataType::Double,
                found: other.data_type(),
            }),
        }
    }

    /// Returns the string payload, or a type error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(RelationError::TypeError {
                expected: DataType::Str,
                found: other.data_type(),
            }),
        }
    }

    /// Returns the boolean payload, or a type error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(RelationError::TypeError {
                expected: DataType::Bool,
                found: other.data_type(),
            }),
        }
    }

    /// Numeric addition with SQL-style type propagation:
    /// `Int + Int = Int`, anything involving a `Double` is a `Double`.
    pub fn add(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
                Ok(Value::Double(a.as_double()? + b.as_double()?))
            }
            (a, b) => Err(RelationError::Incomparable {
                left: a.data_type(),
                right: b.data_type(),
            }),
        }
    }

    /// Numeric subtraction, same typing rules as [`Value::add`].
    pub fn sub(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
                Ok(Value::Double(a.as_double()? - b.as_double()?))
            }
            (a, b) => Err(RelationError::Incomparable {
                left: a.data_type(),
                right: b.data_type(),
            }),
        }
    }

    /// Numeric multiplication, same typing rules as [`Value::add`].
    ///
    /// Used by the maintenance engine to evaluate the `f(a · cnt₀)`
    /// reconstruction rule for aggregates over compressed duplicates
    /// (paper Section 3.2, "Maintenance Issues under Duplicate Compression").
    pub fn mul(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
                Ok(Value::Double(a.as_double()? * b.as_double()?))
            }
            (a, b) => Err(RelationError::Incomparable {
                left: a.data_type(),
                right: b.data_type(),
            }),
        }
    }

    /// The additive identity for a numeric type (used to seed SUM states).
    pub fn zero_of(dtype: DataType) -> Result<Value> {
        match dtype {
            DataType::Int => Ok(Value::Int(0)),
            DataType::Double => Ok(Value::Double(0.0)),
            other => Err(RelationError::TypeError {
                expected: DataType::Int,
                found: other,
            }),
        }
    }

    /// Comparison that fails on cross-type comparisons between
    /// non-numeric types instead of silently ordering by variant.
    ///
    /// Doubles compare NaN-last (see [`total_cmp_nan_last`]): every NaN
    /// orders after every number, so `MIN`/`MAX` folds treat NaN as the
    /// largest value regardless of its sign bit. Under plain
    /// [`f64::total_cmp`] a negative NaN sorts *below* `-inf`, which would
    /// let a columnar fold (one order) and the row-at-a-time oracle
    /// (another order) disagree on pathological floats.
    pub fn try_cmp(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
                Ok(total_cmp_nan_last(a.as_double()?, b.as_double()?))
            }
            (a, b) => Err(RelationError::Incomparable {
                left: a.data_type(),
                right: b.data_type(),
            }),
        }
    }

    /// The number of bytes the paper's storage model charges for one field.
    ///
    /// The Section 1.1 size computation charges a flat 4 bytes per field
    /// ("5 fields × 4 bytes"); we reproduce that model here so that our
    /// analytic sizes match the paper's arithmetic exactly.
    pub const PAPER_FIELD_BYTES: u64 = 4;

    /// An estimate of the in-memory footprint of this value in bytes,
    /// used by the measured (as opposed to paper-model) storage reports.
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Double(_) | Value::Bool(_) => {
                std::mem::size_of::<Value>() as u64
            }
            Value::Str(s) => std::mem::size_of::<Value>() as u64 + s.capacity() as u64,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: values of the same type order naturally (doubles via
    /// `total_cmp`), and heterogeneous values order by type tag. The
    /// heterogeneous branch exists only so rows can be sorted
    /// deterministically in test output; query evaluation uses
    /// [`Value::try_cmp`], which rejects it.
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) => 1,
                Value::Double(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => total_cmp_nan_last(*a, *b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

/// Total order over `f64` with *every* NaN ordered after every number:
/// `-inf < … < +inf < NaN` (NaNs among themselves order by
/// [`f64::total_cmp`], keeping the order total and [`Value`]'s bitwise
/// equality consistent). This is the comparison behind [`Value::try_cmp`]
/// and both the row-at-a-time and columnar MIN/MAX fold kernels, so the
/// two engines cannot diverge on pathological floats.
pub fn total_cmp_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) | (true, true) => a.total_cmp(&b),
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => {
                // Keep doubles lexically distinguishable from integers so
                // SQL rendering round-trips: `1.0` must not print as `1`.
                if d.is_finite() && d.fract() == 0.0 && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_types_of_values() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int);
        assert_eq!(Value::Double(1.0).data_type(), DataType::Double);
        assert_eq!(Value::str("x").data_type(), DataType::Str);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
    }

    #[test]
    fn int_addition_stays_int() {
        let v = Value::Int(2).add(&Value::Int(3)).unwrap();
        assert_eq!(v, Value::Int(5));
    }

    #[test]
    fn mixed_addition_promotes_to_double() {
        let v = Value::Int(2).add(&Value::Double(0.5)).unwrap();
        assert_eq!(v, Value::Double(2.5));
    }

    #[test]
    fn subtraction_and_multiplication() {
        assert_eq!(Value::Int(7).sub(&Value::Int(3)).unwrap(), Value::Int(4));
        assert_eq!(Value::Int(7).mul(&Value::Int(3)).unwrap(), Value::Int(21));
        assert_eq!(
            Value::Double(1.5).mul(&Value::Int(4)).unwrap(),
            Value::Double(6.0)
        );
    }

    #[test]
    fn string_arithmetic_is_rejected() {
        assert!(Value::str("a").add(&Value::Int(1)).is_err());
        assert!(Value::Int(1).mul(&Value::Bool(true)).is_err());
    }

    #[test]
    fn zero_of_numeric_types() {
        assert_eq!(Value::zero_of(DataType::Int).unwrap(), Value::Int(0));
        assert_eq!(
            Value::zero_of(DataType::Double).unwrap(),
            Value::Double(0.0)
        );
        assert!(Value::zero_of(DataType::Str).is_err());
    }

    #[test]
    fn try_cmp_same_type() {
        assert_eq!(
            Value::Int(1).try_cmp(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            Value::str("b").try_cmp(&Value::str("a")).unwrap(),
            Ordering::Greater
        );
    }

    #[test]
    fn try_cmp_numeric_cross_type() {
        assert_eq!(
            Value::Int(2).try_cmp(&Value::Double(2.0)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::Double(1.5).try_cmp(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn try_cmp_rejects_incomparable() {
        assert!(Value::str("a").try_cmp(&Value::Int(1)).is_err());
        assert!(Value::Bool(true).try_cmp(&Value::Double(0.0)).is_err());
    }

    #[test]
    fn double_equality_is_bitwise() {
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
        assert_ne!(Value::Double(0.0), Value::Double(-0.0));
    }

    #[test]
    fn nan_orders_after_every_number() {
        // Regression pin for the NaN-last total order: under raw
        // `f64::total_cmp` a negative NaN sorts *below* -inf, which made a
        // MIN fold report NaN as the minimum of {-inf, -NaN}. Every NaN
        // must order after every number, so MIN({1.0, NaN}) = 1.0 and
        // MAX({1.0, NaN}) = NaN, in both engines.
        let nan = Value::Double(f64::NAN);
        let neg_nan = Value::Double(-f64::NAN);
        assert_eq!(
            nan.try_cmp(&Value::Double(f64::INFINITY)).unwrap(),
            Ordering::Greater
        );
        assert_eq!(
            neg_nan.try_cmp(&Value::Double(f64::NEG_INFINITY)).unwrap(),
            Ordering::Greater
        );
        assert_eq!(nan.try_cmp(&Value::Int(1)).unwrap(), Ordering::Greater);
        assert_eq!(Value::Double(1.0).try_cmp(&nan).unwrap(), Ordering::Less);
        assert_eq!(
            total_cmp_nan_last(-f64::NAN, f64::NEG_INFINITY),
            Ordering::Greater
        );

        // A MIN/MAX fold via try_cmp lands on 1.0 / NaN respectively.
        let vals = [Value::Double(1.0), Value::Double(f64::NAN)];
        let min = vals
            .iter()
            .cloned()
            .reduce(|a, b| {
                if b.try_cmp(&a).unwrap() == Ordering::Less {
                    b
                } else {
                    a
                }
            })
            .unwrap();
        let max = vals
            .iter()
            .cloned()
            .reduce(|a, b| {
                if b.try_cmp(&a).unwrap() == Ordering::Greater {
                    b
                } else {
                    a
                }
            })
            .unwrap();
        assert_eq!(min, Value::Double(1.0));
        assert!(matches!(max, Value::Double(d) if d.is_nan()));
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::Double(3.25);
        let b = Value::Double(3.25);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::str("abc")));
    }

    #[test]
    fn total_order_is_consistent() {
        let mut vals = vec![
            Value::str("z"),
            Value::Int(5),
            Value::Double(2.5),
            Value::Bool(false),
            Value::Int(-1),
        ];
        vals.sort();
        // Bool < Int < Double < Str by tag; ints ordered among themselves.
        assert_eq!(
            vals,
            vec![
                Value::Bool(false),
                Value::Int(-1),
                Value::Int(5),
                Value::Double(2.5),
                Value::str("z"),
            ]
        );
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(Value::Double(1.0).to_string(), "1.0");
        assert_eq!(Value::Double(2.5).to_string(), "2.5");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Double(2.5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn paper_field_bytes_matches_paper_model() {
        // Section 1.1: "5 fields × 4 bytes".
        assert_eq!(Value::PAPER_FIELD_BYTES, 4);
    }
}

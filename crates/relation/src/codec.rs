//! A compact, versioned binary codec for values and rows.
//!
//! The warehouse's reason for existing is that the sources are
//! unreachable — so its state (summary + auxiliary views) must survive
//! restarts without a reload. This module provides the primitive
//! encoding used by the snapshot format in `md-maintain`: little-endian
//! fixed-width integers, IEEE-754 bit patterns for doubles (preserving
//! the engine's bitwise value semantics), and length-prefixed UTF-8
//! strings.

use crate::delta::Change;
use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::value::Value;

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 checksum (IEEE, as used by zlib/Ethernet) of `bytes`.
/// Guards the change-log frames in `md-maintain` against torn or
/// bit-flipped writes.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Serializes primitives into a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Finishes encoding, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing was encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip,
    /// including NaN payloads and signed zeros).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a tagged [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.put_u8(0);
                self.put_i64(*i);
            }
            Value::Double(d) => {
                self.put_u8(1);
                self.put_f64(*d);
            }
            Value::Str(s) => {
                self.put_u8(2);
                self.put_str(s);
            }
            Value::Bool(b) => {
                self.put_u8(3);
                self.put_u8(u8::from(*b));
            }
        }
    }

    /// Appends a length-prefixed [`Row`].
    pub fn put_row(&mut self, row: &Row) {
        self.put_u32(row.arity() as u32);
        for v in row.values() {
            self.put_value(v);
        }
    }

    /// Appends a tagged [`Change`].
    pub fn put_change(&mut self, change: &Change) {
        match change {
            Change::Insert(row) => {
                self.put_u8(0);
                self.put_row(row);
            }
            Change::Delete(row) => {
                self.put_u8(1);
                self.put_row(row);
            }
            Change::Update { old, new } => {
                self.put_u8(2);
                self.put_row(old);
                self.put_row(new);
            }
        }
    }
}

/// Deserializes primitives from a byte slice, tracking position.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` when the input is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, what: &str) -> RelationError {
        RelationError::Invalid(format!(
            "corrupt snapshot: truncated {what} at byte {}",
            self.pos
        ))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(what));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an IEEE-754 `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len, "string payload")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RelationError::Invalid("corrupt snapshot: invalid UTF-8".into()))
    }

    /// Reads a tagged [`Value`].
    pub fn take_value(&mut self) -> Result<Value> {
        match self.take_u8()? {
            0 => Ok(Value::Int(self.take_i64()?)),
            1 => Ok(Value::Double(self.take_f64()?)),
            2 => Ok(Value::Str(self.take_str()?)),
            3 => Ok(Value::Bool(self.take_u8()? != 0)),
            tag => Err(RelationError::Invalid(format!(
                "corrupt snapshot: unknown value tag {tag}"
            ))),
        }
    }

    /// Reads a length-prefixed [`Row`].
    pub fn take_row(&mut self) -> Result<Row> {
        let arity = self.take_u32()? as usize;
        // The length prefix is untrusted input: every value occupies at
        // least one byte, so an arity beyond the remaining bytes is
        // corruption — reject it before allocating anything that size.
        if arity > self.remaining() {
            return Err(self.corrupt("row (arity exceeds remaining bytes)"));
        }
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(self.take_value()?);
        }
        Ok(Row::new(vals))
    }

    /// Reads a tagged [`Change`].
    pub fn take_change(&mut self) -> Result<Change> {
        match self.take_u8()? {
            0 => Ok(Change::Insert(self.take_row()?)),
            1 => Ok(Change::Delete(self.take_row()?)),
            2 => Ok(Change::Update {
                old: self.take_row()?,
                new: self.take_row()?,
            }),
            tag => Err(RelationError::Invalid(format!(
                "corrupt snapshot: unknown change tag {tag}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn round_trip_value(v: Value) {
        let mut e = Encoder::new();
        e.put_value(&v);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_value().unwrap(), v);
        assert!(d.is_exhausted());
    }

    #[test]
    fn primitive_round_trips() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(1_000_000);
        e.put_u64(u64::MAX);
        e.put_i64(-42);
        e.put_f64(-0.0);
        e.put_str("héllo");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 1_000_000);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert_eq!(d.take_i64().unwrap(), -42);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.take_str().unwrap(), "héllo");
        assert!(d.is_exhausted());
    }

    #[test]
    fn value_round_trips() {
        round_trip_value(Value::Int(i64::MIN));
        round_trip_value(Value::Double(f64::NAN)); // bitwise-preserved
        round_trip_value(Value::Double(3.25));
        round_trip_value(Value::str(""));
        round_trip_value(Value::str("brand-42"));
        round_trip_value(Value::Bool(true));
    }

    #[test]
    fn row_round_trips() {
        let r = row![1, 2.5, "x", true];
        let mut e = Encoder::new();
        e.put_row(&r);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_row().unwrap(), r);
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.put_row(&row![1, "abc"]);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(d.take_row().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut d = Decoder::new(&[9]);
        assert!(d.take_value().is_err());
    }

    #[test]
    fn change_round_trips() {
        let changes = [
            Change::Insert(row![1, "a", 2.5]),
            Change::Delete(row![7]),
            Change::Update {
                old: row![1, "a"],
                new: row![1, "b"],
            },
        ];
        let mut e = Encoder::new();
        for c in &changes {
            e.put_change(c);
        }
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        for c in &changes {
            assert_eq!(&d.take_change().unwrap(), c);
        }
        assert!(d.is_exhausted());
    }

    #[test]
    fn change_decoding_rejects_garbage() {
        assert!(Decoder::new(&[3]).take_change().is_err()); // unknown tag
        let mut e = Encoder::new();
        e.put_change(&Change::Insert(row![1, "abc"]));
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            assert!(Decoder::new(&bytes[..cut]).take_change().is_err());
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut e = Encoder::new();
        e.put_row(&row![1, "abc", 2.5]);
        let bytes = e.into_bytes();
        let good = crc32(&bytes);
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x10;
            assert_ne!(crc32(&flipped), good, "flip at byte {i} undetected");
        }
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use crate::row::Row;
    use proptest::prelude::*;

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Double),
            "[a-zA-Z0-9 '\\-]{0,24}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    proptest! {
        #[test]
        fn any_value_round_trips(v in value_strategy()) {
            let mut e = Encoder::new();
            e.put_value(&v);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.take_value().unwrap(), v);
            prop_assert!(d.is_exhausted());
        }

        #[test]
        fn any_row_round_trips(vals in proptest::collection::vec(value_strategy(), 0..12)) {
            let r = Row::new(vals);
            let mut e = Encoder::new();
            e.put_row(&r);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.take_row().unwrap(), r);
        }

        #[test]
        fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Arbitrary input must produce Ok or Err — never a panic.
            let mut d = Decoder::new(&bytes);
            let _ = d.take_row();
            let mut d = Decoder::new(&bytes);
            let _ = d.take_value();
            let mut d = Decoder::new(&bytes);
            let _ = d.take_str();
        }
    }
}

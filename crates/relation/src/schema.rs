//! Table schemas.
//!
//! Following the paper (Section 2.1) every base table has a *single-attribute
//! key*; the key column index is recorded on `TableDef` in
//! [`crate::catalog`], not here — a [`Schema`] is just an ordered list of
//! typed, named columns and is shared by base tables, views and intermediate
//! results.

use std::fmt;

use crate::error::{RelationError, Result};
use crate::value::{DataType, Value};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within its schema).
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.dtype)
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from columns. Returns an error on duplicate names.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(RelationError::Invalid(format!(
                    "duplicate column name '{}' in schema",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        // Duplicate names in a literal pair list are a programming error.
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("duplicate column names in schema literal")
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`, panicking if out of range.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Looks up a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Looks up a column index by name, returning an error naming `table`
    /// when absent.
    pub fn resolve(&self, table: &str, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| RelationError::UnknownColumn {
                table: table.to_owned(),
                column: name.to_owned(),
            })
    }

    /// Validates that `row` matches this schema in arity and types.
    pub fn check_row(&self, table: &str, row: &[Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(RelationError::SchemaMismatch {
                table: table.to_owned(),
                detail: format!("expected {} values, got {}", self.arity(), row.len()),
            });
        }
        for (col, val) in self.columns.iter().zip(row) {
            if col.dtype != val.data_type() {
                return Err(RelationError::SchemaMismatch {
                    table: table.to_owned(),
                    detail: format!(
                        "column '{}' expects {}, got {}",
                        col.name,
                        col.dtype,
                        val.data_type()
                    ),
                });
            }
        }
        Ok(())
    }

    /// A new schema containing the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sale_schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("timeid", DataType::Int),
            ("productid", DataType::Int),
            ("storeid", DataType::Int),
            ("price", DataType::Double),
        ])
    }

    #[test]
    fn arity_and_lookup() {
        let s = sale_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.index_of("price"), Some(4));
        assert_eq!(s.index_of("brand"), None);
        assert_eq!(s.column(1).name, "timeid");
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Str),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn resolve_errors_name_the_table() {
        let s = sale_schema();
        let e = s.resolve("sale", "brand").unwrap_err();
        assert!(e.to_string().contains("sale"));
        assert!(e.to_string().contains("brand"));
    }

    #[test]
    fn check_row_accepts_matching() {
        let s = sale_schema();
        let row = vec![
            Value::Int(1),
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::Double(9.99),
        ];
        assert!(s.check_row("sale", &row).is_ok());
    }

    #[test]
    fn check_row_rejects_wrong_arity() {
        let s = sale_schema();
        assert!(s.check_row("sale", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn check_row_rejects_wrong_type() {
        let s = sale_schema();
        let row = vec![
            Value::Int(1),
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::str("not-a-price"),
        ];
        let e = s.check_row("sale", &row).unwrap_err();
        assert!(e.to_string().contains("price"));
    }

    #[test]
    fn projection_keeps_order() {
        let s = sale_schema();
        let p = s.project(&[1, 2]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.column(0).name, "timeid");
        assert_eq!(p.column(1).name, "productid");
    }

    #[test]
    fn display_renders_all_columns() {
        let s = Schema::from_pairs(&[("id", DataType::Int), ("brand", DataType::Str)]);
        assert_eq!(s.to_string(), "(id INT, brand VARCHAR)");
    }
}

//! Change sets (deltas) flowing from data sources to the warehouse.
//!
//! The paper assumes insertions, deletions and updates of base tables
//! (Section 2.1). Updates that can change attributes involved in selection or
//! join conditions are *exposed* and are propagated as a deletion followed by
//! an insertion; whether an update is exposed depends on the *view*, so the
//! classification itself lives in `md-core`. This module only models the raw
//! change stream.

use std::fmt;

use crate::bag::Bag;
use crate::row::Row;

/// A single change to one base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Change {
    /// Insert a new row.
    Insert(Row),
    /// Delete an existing row, identified by its key value; the full old row
    /// is carried so downstream consumers never need to query the source.
    Delete(Row),
    /// Update an existing row in place (same key). Carries old and new
    /// images; consumers that treat updates as delete+insert can split it.
    Update {
        /// The row before the update.
        old: Row,
        /// The row after the update.
        new: Row,
    },
}

impl Change {
    /// Splits this change into its delete/insert components:
    /// `(deleted row, inserted row)`.
    pub fn as_delete_insert(&self) -> (Option<&Row>, Option<&Row>) {
        match self {
            Change::Insert(r) => (None, Some(r)),
            Change::Delete(r) => (Some(r), None),
            Change::Update { old, new } => (Some(old), Some(new)),
        }
    }
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Change::Insert(r) => write!(f, "+{r}"),
            Change::Delete(r) => write!(f, "-{r}"),
            Change::Update { old, new } => write!(f, "{old} -> {new}"),
        }
    }
}

/// The net effect of a batch of changes on one table, as two bags.
///
/// Updates contribute to both bags (delete of the old image, insert of the
/// new image), matching the paper's treatment of exposed updates. Rows that
/// are both deleted and inserted with identical images cancel out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Rows added to the table.
    pub inserts: Bag,
    /// Rows removed from the table.
    pub deletes: Bag,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Returns `true` when the delta carries no changes.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Records an insertion.
    pub fn insert(&mut self, row: Row) {
        // Cancel against a pending delete of the identical row, so a
        // delete+insert of the same image is a no-op.
        if !self.deletes.remove(&row) {
            self.inserts.insert(row);
        }
    }

    /// Records a deletion.
    pub fn delete(&mut self, row: Row) {
        if !self.inserts.remove(&row) {
            self.deletes.insert(row);
        }
    }

    /// Folds a [`Change`] into this delta, splitting updates.
    pub fn apply_change(&mut self, change: &Change) {
        let (del, ins) = change.as_delete_insert();
        if let Some(d) = del {
            self.delete(d.clone());
        }
        if let Some(i) = ins {
            self.insert(i.clone());
        }
    }

    /// Builds a delta from a sequence of changes.
    pub fn from_changes<'a, I: IntoIterator<Item = &'a Change>>(changes: I) -> Self {
        let mut d = Delta::new();
        for c in changes {
            d.apply_change(c);
        }
        d
    }

    /// Total number of changed row occurrences.
    pub fn len(&self) -> u64 {
        self.inserts.len() + self.deletes.len()
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "delta {{")?;
        for (r, c) in self.inserts.sorted_rows() {
            writeln!(f, "  +{r} x{c}")?;
        }
        for (r, c) in self.deletes.sorted_rows() {
            writeln!(f, "  -{r} x{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn change_splits_into_delete_insert() {
        let u = Change::Update {
            old: row![1, "a"],
            new: row![1, "b"],
        };
        let (d, i) = u.as_delete_insert();
        assert_eq!(d, Some(&row![1, "a"]));
        assert_eq!(i, Some(&row![1, "b"]));
    }

    #[test]
    fn delta_accumulates_changes() {
        let changes = vec![
            Change::Insert(row![1]),
            Change::Insert(row![2]),
            Change::Delete(row![3]),
        ];
        let d = Delta::from_changes(&changes);
        assert_eq!(d.inserts.len(), 2);
        assert_eq!(d.deletes.len(), 1);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn identical_delete_insert_cancels() {
        let mut d = Delta::new();
        d.delete(row![5, "x"]);
        d.insert(row![5, "x"]);
        assert!(d.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut d = Delta::new();
        d.insert(row![5]);
        d.delete(row![5]);
        assert!(d.is_empty());
    }

    #[test]
    fn update_contributes_to_both_sides() {
        let mut d = Delta::new();
        d.apply_change(&Change::Update {
            old: row![1, 10],
            new: row![1, 20],
        });
        assert_eq!(d.deletes.count(&row![1, 10]), 1);
        assert_eq!(d.inserts.count(&row![1, 20]), 1);
    }

    #[test]
    fn display_shows_signs() {
        let mut d = Delta::new();
        d.insert(row![1]);
        d.delete(row![2]);
        let s = d.to_string();
        assert!(s.contains("+(1)"));
        assert!(s.contains("-(2)"));
    }
}

//! Rows (tuples) of values.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A tuple of values, ordered according to some [`Schema`](crate::schema::Schema).
///
/// Rows are plain value vectors with helpers for projection and display.
/// They implement `Eq + Hash + Ord` (inherited from [`Value`]'s total
/// order) so they can be used as hash keys for group-by processing and as
/// sortable test fixtures.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row(Vec<Value>);

impl Row {
    /// Creates a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of values in the row.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the row has no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the underlying values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consume the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// The value at `idx`, panicking if out of range.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// A new row containing the values at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenates two rows (used when materializing joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut vals = Vec::with_capacity(self.arity() + other.arity());
        vals.extend_from_slice(&self.0);
        vals.extend_from_slice(&other.0);
        Row(vals)
    }

    /// Appends a value, returning the extended row.
    pub fn with(mut self, value: Value) -> Row {
        self.0.push(value);
        self
    }

    /// Estimated in-memory footprint, for measured storage reports.
    pub fn heap_bytes(&self) -> u64 {
        self.0.iter().map(Value::heap_bytes).sum::<u64>() + std::mem::size_of::<Row>() as u64
    }
}

impl Index<usize> for Row {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a [`Row`] from a heterogeneous list of expressions convertible
/// into [`Value`].
///
/// ```
/// use md_relation::row;
/// let r = row![1, 2.5, "brand-a"];
/// assert_eq!(r.arity(), 3);
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_builds_typed_values() {
        let r = row![1, 2.0, "x", true];
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(1), &Value::Double(2.0));
        assert_eq!(r.get(2), &Value::str("x"));
        assert_eq!(r.get(3), &Value::Bool(true));
    }

    #[test]
    fn projection_reorders() {
        let r = row![10, 20, 30];
        assert_eq!(r.project(&[2, 0]), row![30, 10]);
    }

    #[test]
    fn concat_joins_rows() {
        let r = row![1, 2].concat(&row![3]);
        assert_eq!(r, row![1, 2, 3]);
    }

    #[test]
    fn with_appends() {
        let r = row![1].with(Value::Int(2));
        assert_eq!(r, row![1, 2]);
    }

    #[test]
    fn index_operator() {
        let r = row![5, 6];
        assert_eq!(r[1], Value::Int(6));
    }

    #[test]
    fn rows_usable_as_hash_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<Row, u64> = HashMap::new();
        *m.entry(row![1, "a"]).or_insert(0) += 1;
        *m.entry(row![1, "a"]).or_insert(0) += 1;
        assert_eq!(m[&row![1, "a"]], 2);
    }

    #[test]
    fn display_renders_tuple() {
        assert_eq!(row![1, "a"].to_string(), "(1, 'a')");
    }

    #[test]
    fn from_iterator_collects() {
        let r: Row = (0..3).map(Value::Int).collect();
        assert_eq!(r, row![0, 1, 2]);
    }
}

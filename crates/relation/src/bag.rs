//! Bag (multiset) relations.
//!
//! SQL and the paper's GPSJ algebra operate under *bag semantics*: a
//! selection over a base table, or a join result before generalized
//! projection, may contain duplicate tuples, and the duplicate count is
//! semantically significant (it is exactly what smart duplicate compression
//! aggregates away). [`Bag`] stores each distinct row once with a
//! multiplicity, which is both compact and makes bag equality cheap.

use std::collections::HashMap;
use std::fmt;

use crate::row::Row;

/// A multiset of rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bag {
    counts: HashMap<Row, u64>,
    len: u64,
}

impl Bag {
    /// An empty bag.
    pub fn new() -> Self {
        Bag::default()
    }

    /// Builds a bag from an iterator of rows, accumulating duplicates.
    pub fn from_rows<I: IntoIterator<Item = Row>>(rows: I) -> Self {
        let mut bag = Bag::new();
        for r in rows {
            bag.insert(r);
        }
        bag
    }

    /// Total number of rows, counting multiplicities.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Number of *distinct* rows.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` when the bag holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Multiplicity of `row` (0 when absent).
    pub fn count(&self, row: &Row) -> u64 {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Inserts one occurrence of `row`.
    pub fn insert(&mut self, row: Row) {
        self.insert_n(row, 1);
    }

    /// Inserts `n` occurrences of `row`.
    pub fn insert_n(&mut self, row: Row, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(row).or_insert(0) += n;
        self.len += n;
    }

    /// Removes one occurrence of `row`. Returns `false` if it was absent.
    pub fn remove(&mut self, row: &Row) -> bool {
        self.remove_n(row, 1) == 1
    }

    /// Removes up to `n` occurrences of `row`, returning how many were removed.
    pub fn remove_n(&mut self, row: &Row, n: u64) -> u64 {
        match self.counts.get_mut(row) {
            None => 0,
            Some(c) => {
                let removed = (*c).min(n);
                *c -= removed;
                if *c == 0 {
                    self.counts.remove(row);
                }
                self.len -= removed;
                removed
            }
        }
    }

    /// Iterates over `(row, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, u64)> {
        self.counts.iter().map(|(r, &c)| (r, c))
    }

    /// Iterates over every occurrence (rows repeated per multiplicity).
    pub fn iter_occurrences(&self) -> impl Iterator<Item = &Row> {
        self.counts
            .iter()
            .flat_map(|(r, &c)| std::iter::repeat(r).take(c as usize))
    }

    /// All distinct rows sorted — deterministic output for tests and reports.
    pub fn sorted_rows(&self) -> Vec<(Row, u64)> {
        let mut rows: Vec<(Row, u64)> = self.counts.iter().map(|(r, &c)| (r.clone(), c)).collect();
        rows.sort();
        rows
    }
}

impl FromIterator<Row> for Bag {
    fn from_iter<I: IntoIterator<Item = Row>>(iter: I) -> Self {
        Bag::from_rows(iter)
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for (row, count) in self.sorted_rows() {
            writeln!(f, "  {row} x{count}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn insert_accumulates_multiplicity() {
        let mut b = Bag::new();
        b.insert(row![1]);
        b.insert(row![1]);
        b.insert(row![2]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.distinct_len(), 2);
        assert_eq!(b.count(&row![1]), 2);
    }

    #[test]
    fn remove_decrements_and_cleans_up() {
        let mut b = Bag::from_rows(vec![row![1], row![1]]);
        assert!(b.remove(&row![1]));
        assert_eq!(b.count(&row![1]), 1);
        assert!(b.remove(&row![1]));
        assert_eq!(b.count(&row![1]), 0);
        assert!(!b.remove(&row![1]));
        assert!(b.is_empty());
    }

    #[test]
    fn remove_n_caps_at_multiplicity() {
        let mut b = Bag::new();
        b.insert_n(row![7], 3);
        assert_eq!(b.remove_n(&row![7], 5), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn insert_n_zero_is_noop() {
        let mut b = Bag::new();
        b.insert_n(row![1], 0);
        assert!(b.is_empty());
        assert_eq!(b.distinct_len(), 0);
    }

    #[test]
    fn bag_equality_ignores_insertion_order() {
        let a = Bag::from_rows(vec![row![1], row![2], row![1]]);
        let b = Bag::from_rows(vec![row![2], row![1], row![1]]);
        assert_eq!(a, b);
        let c = Bag::from_rows(vec![row![1], row![2]]);
        assert_ne!(a, c); // multiplicity matters
    }

    #[test]
    fn iter_occurrences_repeats_rows() {
        let b = Bag::from_rows(vec![row![9], row![9]]);
        assert_eq!(b.iter_occurrences().count(), 2);
    }

    #[test]
    fn sorted_rows_is_deterministic() {
        let b = Bag::from_rows(vec![row![3], row![1], row![2], row![1]]);
        let sorted = b.sorted_rows();
        assert_eq!(sorted, vec![(row![1], 2), (row![2], 1), (row![3], 1)]);
    }
}

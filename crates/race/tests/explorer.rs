//! Acceptance tests for the schedule explorer: exhaustive coverage on
//! the retail batch workload, reproducibility from the printed seed and
//! schedule, planted-bug detection, and dead-letter determinism.

use md_race::{retail_fault_scenario, retail_scenario, Explorer, RaceConfig};

/// The headline guarantee: at `workers = 2` the retail workload's
/// prepare fan-out (two tasks, six yield points each) has C(12, 6) = 924
/// interleavings, and the explorer visits every one of them within the
/// bound — well past the 500-schedule floor — with byte-identity against
/// the sequential oracle, LSN monotonicity, and the `MD06x` pass clean
/// on every schedule.
#[test]
fn retail_workload_explores_exhaustively_and_cleanly() {
    let scenario = retail_scenario(1, 6, 7);
    let cfg = RaceConfig {
        workers: 2,
        bound: 12,
        max_schedules: 10_000,
        random_schedules: 16,
        seed: 0xD1CE,
        check_static: true,
    };
    let report = Explorer::new(&scenario, cfg).run();
    println!("{}", report.summary());
    assert!(report.exhaustive, "enumeration must finish within the cap");
    assert_eq!(
        report.schedules, 924,
        "two tasks with six yields each have C(12,6) interleavings"
    );
    assert!(report.schedules >= 500, "acceptance floor");
    assert_eq!(report.random_schedules, 16);
    assert!(
        report.is_clean(),
        "violations found:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The same configuration explored twice produces the identical report:
/// schedule count, depth, event count. Determinism is what makes a
/// printed seed a bug report.
#[test]
fn exploration_is_deterministic_for_a_seed() {
    let scenario = retail_scenario(1, 4, 21);
    let cfg = RaceConfig {
        bound: 6,
        max_schedules: 2_000,
        random_schedules: 8,
        seed: 0xBEEF,
        ..RaceConfig::default()
    };
    let a = Explorer::new(&scenario, cfg.clone()).run();
    let b = Explorer::new(&scenario, cfg).run();
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.random_schedules, b.random_schedules);
    assert_eq!(a.max_decisions, b.max_decisions);
    assert_eq!(a.events, b.events);
    assert_eq!(a.violations.len(), b.violations.len());
}

/// The planted commit-before-append bug is caught: both the direct
/// trace invariant and the `MD060` static pass flag it, on a bounded
/// exhaustive sweep and on seeded-random schedules alike — and a
/// reported violation replays from its printed schedule and seed.
#[test]
fn planted_commit_reordering_bug_is_caught_and_replays() {
    let scenario = retail_scenario(1, 6, 7).with_planted_bug();
    let cfg = RaceConfig {
        bound: 3,
        max_schedules: 64,
        random_schedules: 4,
        seed: 0xF00D,
        ..RaceConfig::default()
    };
    let explorer = Explorer::new(&scenario, cfg);
    let report = explorer.run();
    assert!(
        !report.is_clean(),
        "the planted bug must be caught on every schedule"
    );
    assert_eq!(
        report.violations.len() as u64,
        report.schedules + report.random_schedules,
        "commit-before-append is unconditional, so every schedule trips it"
    );
    let v = &report.violations[0];
    assert!(
        v.findings.iter().any(|f| f.contains("MD060")),
        "static pass flags the reordering: {:?}",
        v.findings
    );
    assert!(
        v.findings
            .iter()
            .any(|f| f.contains("committed before the batch's WAL append")),
        "trace invariant flags the reordering: {:?}",
        v.findings
    );
    // Reproduce from the printed coordinates alone.
    let replayed = explorer.replay(&v.schedule, v.seed);
    assert_eq!(replayed, v.findings, "violation replays byte-for-byte");
}

/// A poisoned batch (deleting a row that never existed) is rejected
/// identically on every interleaving: same error, same dead letters,
/// same surviving state as the sequential oracle.
#[test]
fn dead_letters_are_deterministic_across_schedules() {
    let scenario = retail_fault_scenario(11);
    let cfg = RaceConfig {
        bound: 8,
        max_schedules: 2_000,
        random_schedules: 8,
        seed: 0xACE,
        ..RaceConfig::default()
    };
    let report = Explorer::new(&scenario, cfg).run();
    println!("{}", report.summary());
    assert!(report.exhaustive);
    assert!(
        report.schedules > 100,
        "the surviving batches still fan out: {} schedules",
        report.schedules
    );
    assert!(
        report.is_clean(),
        "dead-letter handling must not depend on the schedule:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Fault-domain isolation under the schedule explorer: a summary whose
//! prepare panics is quarantined while the healthy rest of the batch
//! commits — identically on every interleaving — and repair brings the
//! quarantined summary back to the exact state of a warehouse that never
//! faulted.

use md_race::{
    retail_panic_scenario, retail_scenario, retail_transient_wal_scenario, silence_injected_panics,
    Explorer, PlannedFault, RaceConfig, Scenario, SnapshotScenario,
};
use md_warehouse::Warehouse;

fn explore_cfg(seed: u64) -> RaceConfig {
    RaceConfig {
        bound: 6,
        max_schedules: 400,
        random_schedules: 4,
        seed,
        ..RaceConfig::default()
    }
}

fn apply_all(wh: &mut Warehouse, scenario: &SnapshotScenario) {
    for batch in scenario.batches() {
        wh.apply_batch(batch).expect("quarantine absorbs the fault");
    }
}

/// With quarantine on but auto-repair off, the panicking `product_sales`
/// engine is isolated and the five healthy summaries commit the whole
/// workload — byte-identically across every explored interleaving and
/// the sequential oracle.
#[test]
fn healthy_subset_commits_identically_across_schedules() {
    silence_injected_panics();
    let scenario = retail_scenario(3, 6, 71)
        .renamed("retail-panic-noheal")
        .with_quarantine(false)
        .with_fault(PlannedFault::Panic {
            point: "engine.apply.change@product_sales".into(),
            nth: 0,
        });

    let report = Explorer::new(&scenario, explore_cfg(0x9A41)).run();
    assert!(report.exhaustive, "{}", report.summary());
    assert!(
        report.is_clean(),
        "healthy-subset commit must be schedule-independent:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // A sequential run shows what every schedule converged to: one
    // quarantined summary with its deltas queued, the rest live.
    let mut wh = scenario.build(Warehouse::builder().workers(1));
    let before = wh.summary_rows("product_sales").unwrap();
    apply_all(&mut wh, &scenario);
    assert!(wh.is_quarantined("product_sales"));
    let (_, entry) = wh.quarantined().next().unwrap();
    assert!(entry.since_lsn() > 0);
    assert!(entry.pending_changes() > 0, "queued deltas accumulate");
    assert!(entry.cause().contains("injected panic"));
    // The isolated summary is frozen at its pre-fault state...
    assert_eq!(wh.summary_rows("product_sales").unwrap(), before);
    // ...while a healthy summary moved with the workload.
    let clean = {
        let mut wh = retail_scenario(3, 6, 71).build(Warehouse::builder().workers(1));
        apply_all(&mut wh, &retail_scenario(3, 6, 71));
        wh
    };
    assert_eq!(
        wh.summary_rows("store_revenue").unwrap(),
        clean.summary_rows("store_revenue").unwrap(),
        "healthy summaries commit the full workload"
    );
}

/// With auto-repair on, every interleaving converges to the oracle's
/// repaired state, and that state matches a warehouse that never
/// faulted, summary for summary, at the same LSN.
#[test]
fn repair_restores_the_fault_free_state_on_every_schedule() {
    silence_injected_panics();
    let scenario = retail_panic_scenario(72);

    let report = Explorer::new(&scenario, explore_cfg(0x9A42)).run();
    assert!(report.exhaustive, "{}", report.summary());
    assert!(
        report.is_clean(),
        "repair must be schedule-independent:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    let mut repaired = scenario.build(Warehouse::builder().workers(2));
    apply_all(&mut repaired, &scenario);
    assert_eq!(repaired.quarantined().count(), 0, "auto-repair drains");

    let clean_scenario = retail_scenario(3, 6, 72);
    let mut clean = clean_scenario.build(Warehouse::builder().workers(1));
    apply_all(&mut clean, &clean_scenario);

    for (name, report) in repaired.audit() {
        assert!(report.is_clean(), "audit of '{name}' after repair");
    }
    for name in [
        "product_sales",
        "product_sales_max",
        "store_revenue",
        "daily_product",
        "monthly_volume",
        "country_revenue",
    ] {
        assert_eq!(
            repaired.summary_rows(name).unwrap(),
            clean.summary_rows(name).unwrap(),
            "'{name}' must match the fault-free warehouse after repair"
        );
    }
}

/// A transient torn-write storm on the change log retries to the same
/// final state on every interleaving: the torn frames are truncated by
/// the retried appends and the surviving log is byte-identical to a
/// fault-free run's.
#[test]
fn retried_wal_appends_are_schedule_independent() {
    let scenario = retail_transient_wal_scenario(73);
    let report = Explorer::new(&scenario, explore_cfg(0x9A43)).run();
    assert!(report.exhaustive, "{}", report.summary());
    assert!(
        report.is_clean(),
        "retried appends must be schedule-independent:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The healed log is indistinguishable from a never-faulted one.
    let mut faulted = scenario.build(Warehouse::builder().workers(1));
    apply_all(&mut faulted, &scenario);
    let clean_scenario = retail_scenario(3, 6, 73);
    let mut clean = clean_scenario.build(Warehouse::builder().workers(1));
    apply_all(&mut clean, &clean_scenario);
    assert_eq!(faulted.wal_bytes(), clean.wal_bytes());
    assert_eq!(faulted.save().unwrap(), clean.save().unwrap());
}

//! Batch-coalescing edge cases under permuted delivery orders.
//!
//! A staging area batching trickle-feed activity delivers each row's
//! changes in order, but rows interleave arbitrarily. These tests
//! permute a hot-row batch at row granularity (each row's own
//! subsequence stays ordered, so the stream remains valid), drive every
//! permutation through the md-race stepper with fixed seeds, and assert
//! that annihilation (rows born and dead within the batch) and
//! update-folding (repeated repricings of the same row) produce the
//! same final state no matter the delivery order or the interleaving.

use md_maintain::IoFaultKind;
use md_race::{Explorer, PlannedFault, RaceConfig, Scenario, SnapshotScenario};
use md_relation::{Change, Value};
use md_warehouse::{ChangeBatch, Warehouse};
use md_workload::retail::{generate_retail, Contracts, RetailParams, RetailSchema};
use md_workload::updates::{hot_sale_batches, HotBatchParams};
use md_workload::views;

/// The row key a change targets (`sale.id` lives in column 0).
fn change_key(change: &Change) -> Value {
    match change {
        Change::Insert(row) | Change::Delete(row) => row[0].clone(),
        Change::Update { old, .. } => old[0].clone(),
    }
}

/// Splits a batch into per-row runs, preserving each row's internal
/// order: the granularity at which delivery may legally be reordered.
fn row_groups(changes: &[Change]) -> Vec<Vec<Change>> {
    let mut keys: Vec<Value> = Vec::new();
    let mut groups: Vec<Vec<Change>> = Vec::new();
    for change in changes {
        let key = change_key(change);
        match keys.iter().position(|k| *k == key) {
            Some(i) => groups[i].push(change.clone()),
            None => {
                keys.push(key);
                groups.push(vec![change.clone()]);
            }
        }
    }
    groups
}

fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        let j = (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

struct Fixture {
    schema: RetailSchema,
    scenario_base: SnapshotScenario,
    hot_changes: Vec<Change>,
}

/// A tiny retail warehouse with the four paper views, snapshotted
/// *before* one hot-row batch (3 rows × 3 repricings + 2 transient
/// insert/delete pairs) is generated against it.
fn fixture() -> Fixture {
    let (mut db, schema) = generate_retail(RetailParams::tiny(), Contracts::Tight);
    let mut wh = Warehouse::new(db.catalog());
    for sql in [
        views::PRODUCT_SALES_SQL,
        views::PRODUCT_SALES_MAX_SQL,
        views::STORE_REVENUE_SQL,
        views::DAILY_PRODUCT_SQL,
    ] {
        wh.add_summary_sql(sql, &db).expect("paper views are valid");
    }
    let image = wh.save().expect("fresh warehouse snapshot serializes");
    let scenario_base =
        SnapshotScenario::new("coalesce-base", db.catalog().clone(), image, Vec::new());
    let hot_changes = hot_sale_batches(
        &mut db,
        &schema,
        HotBatchParams {
            batches: 1,
            hot_rows: 3,
            touches: 3,
            transient_pairs: 2,
        },
    )
    .remove(0);
    Fixture {
        schema,
        scenario_base,
        hot_changes,
    }
}

fn scenario_with(
    base: &SnapshotScenario,
    name: &str,
    schema: &RetailSchema,
    groups: &[Vec<Change>],
) -> SnapshotScenario {
    let mut batch = ChangeBatch::new();
    for group in groups {
        batch.extend(schema.sale, group.iter().cloned());
    }
    base.clone().renamed(name).with_batches(vec![batch])
}

fn sequential_image(scenario: &SnapshotScenario) -> Vec<u8> {
    let mut wh = scenario.build(Warehouse::builder().workers(1));
    for batch in scenario.batches() {
        wh.apply_batch(batch).expect("hot batch applies cleanly");
    }
    assert!(wh.dead_letters().is_empty(), "no rejections expected");
    wh.save().expect("warehouse snapshot serializes")
}

/// Every row-granularity permutation of the hot batch coalesces to the
/// same state — on the sequential path and under every explored
/// interleaving — and transient rows leave no trace.
#[test]
fn permuted_delivery_orders_coalesce_identically() {
    let fx = fixture();
    let groups = row_groups(&fx.hot_changes);
    assert!(
        groups.len() >= 5,
        "3 hot rows + 2 transient pairs should give 5+ row groups, got {}",
        groups.len()
    );

    let mut orders: Vec<(String, Vec<Vec<Change>>)> = vec![
        ("delivery".into(), groups.clone()),
        ("reversed".into(), {
            let mut g = groups.clone();
            g.reverse();
            g
        }),
    ];
    for seed in [3u64, 17] {
        let mut g = groups.clone();
        shuffle(&mut g, seed);
        orders.push((format!("shuffled-{seed}"), g));
    }

    let cfg = RaceConfig {
        bound: 8,
        max_schedules: 500,
        random_schedules: 4,
        seed: 0xC0A1,
        ..RaceConfig::default()
    };
    let mut images = Vec::new();
    for (name, order) in &orders {
        let scenario = scenario_with(&fx.scenario_base, name, &fx.schema, order);
        let report = Explorer::new(&scenario, cfg.clone()).run();
        assert!(report.exhaustive, "{name}: bounded enumeration must finish");
        assert!(
            report.is_clean(),
            "{name}: coalescing must be schedule-independent:\n{}",
            report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        images.push((name.clone(), sequential_image(&scenario)));
    }
    let (first_name, first) = &images[0];
    for (name, image) in &images[1..] {
        assert_eq!(
            image, first,
            "delivery order {name} diverged from {first_name}"
        );
    }
}

/// A batch whose changes all cancel out — transient insert/delete pairs
/// only — is a no-op: it commits cleanly on every interleaving and the
/// explorer sees a single schedule (nothing fans out after coalescing
/// drops every group).
#[test]
fn fully_annihilating_batch_is_schedule_independent() {
    let fx = fixture();
    let groups = row_groups(&fx.hot_changes);
    // Transient pairs are exactly the insert-then-delete groups.
    let transient: Vec<Vec<Change>> = groups
        .into_iter()
        .filter(|g| {
            matches!(g.first(), Some(Change::Insert(_)))
                && matches!(g.last(), Some(Change::Delete(_)))
        })
        .collect();
    assert_eq!(transient.len(), 2, "fixture plants two transient pairs");

    let scenario = scenario_with(&fx.scenario_base, "annihilate", &fx.schema, &transient);
    let report = Explorer::new(
        &scenario,
        RaceConfig {
            bound: 8,
            max_schedules: 100,
            random_schedules: 2,
            seed: 0xA111,
            ..RaceConfig::default()
        },
    )
    .run();
    assert!(report.is_clean(), "{}", report.summary());
    sequential_image(&scenario);
}

/// Coalescing composed with transient I/O faults: a torn WAL append that
/// heals on retry must not resurrect annihilated insert/delete pairs.
/// The coalesced batch is appended once after the retries — the healed
/// log and the final state are byte-identical to a fault-free run's,
/// under every delivery order and interleaving.
#[test]
fn retried_wal_append_does_not_resurrect_annihilated_pairs() {
    let fx = fixture();
    let groups = row_groups(&fx.hot_changes);
    let clean = scenario_with(&fx.scenario_base, "retry-clean", &fx.schema, &groups);
    // Two torn appends on the hot batch; the default retry policy
    // truncates each torn tail and re-appends. Same delivery order as
    // the fault-free run, so the logs must be byte-identical.
    let faulted = scenario_with(&fx.scenario_base, "retry-torn", &fx.schema, &groups).with_fault(
        PlannedFault::Transient {
            point: "warehouse.wal.append".into(),
            nth: 0,
            kind: IoFaultKind::Torn,
            times: 2,
        },
    );

    let report = Explorer::new(
        &faulted,
        RaceConfig {
            bound: 8,
            max_schedules: 500,
            random_schedules: 4,
            seed: 0xA112,
            ..RaceConfig::default()
        },
    )
    .run();
    assert!(report.exhaustive, "{}", report.summary());
    assert!(
        report.is_clean(),
        "retried appends must be schedule-independent:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    let mut faulted_wh = faulted.build(Warehouse::builder().workers(1));
    for batch in faulted.batches() {
        faulted_wh.apply_batch(batch).expect("retries absorb tears");
    }
    let mut clean_wh = clean.build(Warehouse::builder().workers(1));
    for batch in clean.batches() {
        clean_wh
            .apply_batch(batch)
            .expect("hot batch applies cleanly");
    }
    // The healed log holds the coalesced batch exactly once — no torn
    // tail, no resurrected transient rows.
    assert_eq!(faulted_wh.wal_bytes(), clean_wh.wal_bytes());
    assert_eq!(
        faulted_wh.save().unwrap(),
        clean_wh.save().unwrap(),
        "state after retried appends must match the fault-free run"
    );
    let transient_keys: Vec<Value> = row_groups(&fx.hot_changes)
        .iter()
        .filter(|g| {
            matches!(g.first(), Some(Change::Insert(_)))
                && matches!(g.last(), Some(Change::Delete(_)))
        })
        .map(|g| change_key(&g[0]))
        .collect();
    assert_eq!(
        transient_keys.len(),
        2,
        "fixture plants two transient pairs"
    );
    let (records, _) =
        md_maintain::wal::Wal::replay(faulted_wh.wal_bytes().unwrap()).expect("healed log replays");
    for record in &records {
        for change in &record.changes {
            assert!(
                !transient_keys.contains(&change_key(change)),
                "annihilated row {:?} resurrected in the logged batch",
                change_key(change)
            );
        }
    }
}

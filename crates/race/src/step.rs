//! The cooperative stepping executor.
//!
//! [`StepExecutor`] implements `md-maintain`'s [`Executor`] trait with
//! real OS threads that are *fully serialized*: every thread parks at
//! each of its scheduling points ([`Executor::yield_point`]) and only
//! ever runs while it holds the single grant. The controlling thread —
//! the caller of [`Executor::run_tasks`] — waits until every unfinished
//! task is parked and then grants exactly one of them the next step, so
//! at most one task thread executes at any moment and the interleaving
//! is decided entirely by data, never by the OS scheduler.
//!
//! The data deciding each step, in priority order:
//!
//! 1. the *forced schedule* — a prefix of choice indices replayed
//!    verbatim (this is how the explorer backtracks and how a printed
//!    violation is reproduced),
//! 2. below the *decision bound* — the first runnable task (choice `0`),
//!    so depth-first enumeration visits every within-bound interleaving,
//! 3. beyond the bound — a seeded xorshift pick, so deep suffixes get
//!    randomized coverage that is still reproducible from the seed.
//!
//! A choice is only recorded as a [`Decision`] when more than one task
//! was runnable; forced, first and random picks all land in the same
//! decision list, so `decisions[i].picked` replayed as the forced
//! schedule reproduces the run exactly.

use std::sync::{Condvar, Mutex};

use md_maintain::{Executor, SchedEvent, Task, COORDINATOR};

/// One scheduling choice: how many tasks were runnable, which was
/// granted the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Number of runnable (parked, unfinished) tasks at the point.
    pub options: usize,
    /// Index of the granted task within the sorted runnable set.
    pub picked: usize,
}

/// Everything one run recorded: the decisions taken at branch points
/// and the full event trace in execution order.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// The choices, in decision order. Replaying them as the forced
    /// schedule reproduces the run.
    pub decisions: Vec<Decision>,
    /// Every scheduling event, in the order it executed.
    pub trace: Vec<SchedEvent>,
}

impl RunRecord {
    /// The run's choice sequence — the forced schedule that replays it.
    pub fn schedule(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.picked).collect()
    }
}

#[derive(Debug, Default)]
struct State {
    // Per-run controls (reset by `begin_run`).
    forced: Vec<usize>,
    bound: usize,
    rng: u64,
    decisions: Vec<Decision>,
    trace: Vec<SchedEvent>,
    // Per-fan-out bookkeeping (reset by `run_tasks`).
    active: bool,
    total: usize,
    finished: usize,
    /// Parked task ids, sorted ascending (the runnable set).
    parked: Vec<usize>,
    /// The task currently holding the step grant.
    granted: Option<usize>,
}

/// The deterministic stepper. Install it on a warehouse with
/// `Warehouse::builder().executor(Arc::new(StepExecutor::new()))`, call
/// [`StepExecutor::begin_run`], drive the warehouse, then collect the
/// [`RunRecord`] with [`StepExecutor::finish_run`].
#[derive(Debug, Default)]
pub struct StepExecutor {
    state: Mutex<State>,
    cv: Condvar,
}

fn next_rand(rng: &mut u64) -> u64 {
    // xorshift64* — dependency-free, deterministic, good enough for
    // schedule sampling.
    let mut x = *rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *rng = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl StepExecutor {
    /// A fresh stepper (no forced schedule, bound 0, seed 0).
    pub fn new() -> Self {
        StepExecutor::default()
    }

    /// Starts a run: choices `0..forced.len()` are replayed from
    /// `forced`, further choices up to `bound` take the first runnable
    /// task, and choices beyond `bound` are drawn from a xorshift
    /// stream seeded with `seed`. Clears the previous run's record.
    pub fn begin_run(&self, forced: &[usize], bound: usize, seed: u64) {
        let mut s = self.state.lock().expect("stepper lock");
        assert!(!s.active, "begin_run during an active fan-out");
        s.forced = forced.to_vec();
        s.bound = bound;
        s.rng = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        s.decisions.clear();
        s.trace.clear();
    }

    /// Ends the run and returns its record (decisions + trace).
    pub fn finish_run(&self) -> RunRecord {
        let mut s = self.state.lock().expect("stepper lock");
        assert!(!s.active, "finish_run during an active fan-out");
        RunRecord {
            decisions: std::mem::take(&mut s.decisions),
            trace: std::mem::take(&mut s.trace),
        }
    }

    /// The controller: waits until every unfinished task is parked,
    /// grants one of them the next step, repeats until all finish.
    fn drive(&self, total: usize) {
        let mut s = self.state.lock().expect("stepper lock");
        loop {
            while s.granted.is_some() || s.parked.len() + s.finished < total {
                s = self.cv.wait(s).expect("stepper lock");
            }
            if s.finished == total {
                return;
            }
            let options = s.parked.len();
            let pick = if options == 1 {
                0
            } else {
                let idx = s.decisions.len();
                let picked = if idx < s.forced.len() {
                    s.forced[idx].min(options - 1)
                } else if idx < s.bound {
                    0
                } else {
                    (next_rand(&mut s.rng) % options as u64) as usize
                };
                s.decisions.push(Decision { options, picked });
                picked
            };
            let id = s.parked.remove(pick);
            s.granted = Some(id);
            self.cv.notify_all();
        }
    }
}

/// Marks its task finished on drop, so a panicking task still releases
/// the controller instead of deadlocking the scope.
struct DoneGuard<'a> {
    exec: &'a StepExecutor,
    id: usize,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.exec.state.lock().expect("stepper lock");
        s.finished += 1;
        if s.granted == Some(self.id) {
            s.granted = None;
        }
        if let Ok(pos) = s.parked.binary_search(&self.id) {
            s.parked.remove(pos);
        }
        self.exec.cv.notify_all();
    }
}

impl Executor for StepExecutor {
    fn run_tasks<'a>(&self, tasks: Vec<Task<'a>>) {
        let total = tasks.len();
        if total == 0 {
            return;
        }
        {
            let mut s = self.state.lock().expect("stepper lock");
            assert!(!s.active, "run_tasks is not reentrant");
            s.active = true;
            s.total = total;
            s.finished = 0;
            s.parked.clear();
            s.granted = None;
        }
        std::thread::scope(|scope| {
            for (id, task) in tasks.into_iter().enumerate() {
                scope.spawn(move || {
                    let _done = DoneGuard { exec: self, id };
                    task();
                });
            }
            self.drive(total);
        });
        self.state.lock().expect("stepper lock").active = false;
    }

    fn yield_point(&self, event: SchedEvent) {
        let mut s = self.state.lock().expect("stepper lock");
        if !s.active || event.task == COORDINATOR {
            // Coordinator-phase events (batch markers, WAL appends,
            // commits) run with no fan-out in flight: record only.
            s.trace.push(event);
            return;
        }
        let id = event.task;
        assert!(id < s.total, "yield from unknown task {id}");
        if s.granted == Some(id) {
            s.granted = None;
        }
        match s.parked.binary_search(&id) {
            Ok(_) => panic!("task {id} parked twice"),
            Err(pos) => s.parked.insert(pos, id),
        }
        self.cv.notify_all();
        while s.granted != Some(id) {
            s = self.cv.wait(s).expect("stepper lock");
        }
        // Record the event at grant time, so the trace is in true
        // execution order. The grant is kept until the task parks at
        // its next point or finishes.
        s.trace.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_maintain::SchedOp;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn two_yield_tasks(exec: &StepExecutor, log: &Mutex<Vec<(usize, usize)>>) {
        let tasks: Vec<Task<'_>> = (0..2)
            .map(|id| {
                Box::new(move || {
                    for step in 0..2 {
                        exec.yield_point(SchedEvent {
                            task: id,
                            op: SchedOp::Prepare {
                                engine: format!("e{id}.{step}"),
                            },
                        });
                        log.lock().unwrap().push((id, step));
                    }
                }) as Task<'_>
            })
            .collect();
        exec.run_tasks(tasks);
    }

    #[test]
    fn forced_schedules_are_replayed_exactly() {
        // Two tasks with two yields each: C(4,2) = 6 interleavings.
        let mut seen = Vec::new();
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let exec = StepExecutor::new();
            exec.begin_run(&prefix, 16, 7);
            let log = Mutex::new(Vec::new());
            two_yield_tasks(&exec, &log);
            let record = exec.finish_run();
            let order = log.into_inner().unwrap();
            assert!(!seen.contains(&order), "duplicate interleaving {order:?}");
            seen.push(order);
            // Depth-first backtrack over within-bound decisions.
            let mut next = None;
            for i in (0..record.decisions.len()).rev() {
                let d = record.decisions[i];
                if d.picked + 1 < d.options {
                    let mut p = record.schedule();
                    p.truncate(i);
                    p.push(d.picked + 1);
                    next = Some(p);
                    break;
                }
            }
            match next {
                Some(p) => prefix = p,
                None => break,
            }
        }
        assert_eq!(seen.len(), 6, "expected all C(4,2) interleavings");
    }

    #[test]
    fn replaying_a_recorded_schedule_reproduces_the_order() {
        let run = |forced: &[usize], seed: u64| {
            let exec = StepExecutor::new();
            // bound 0: every branch is seeded-random.
            exec.begin_run(forced, 0, seed);
            let log = Mutex::new(Vec::new());
            two_yield_tasks(&exec, &log);
            (exec.finish_run(), log.into_inner().unwrap())
        };
        let (record, order) = run(&[], 0xFEED);
        assert!(!record.decisions.is_empty());
        // Replaying the full recorded choice sequence reproduces the
        // interleaving regardless of the seed.
        let (_, replayed) = run(&record.schedule(), 0xDEAD_BEEF);
        assert_eq!(order, replayed);
    }

    #[test]
    fn coordinator_events_record_without_blocking() {
        let exec = StepExecutor::new();
        exec.begin_run(&[], 0, 1);
        exec.yield_point(SchedEvent::coord(SchedOp::BatchEnd { committed: true }));
        let record = exec.finish_run();
        assert_eq!(record.trace.len(), 1);
        assert!(record.decisions.is_empty());
    }

    #[test]
    fn single_task_runs_without_decisions() {
        let exec = Arc::new(StepExecutor::new());
        exec.begin_run(&[], 16, 1);
        let ran = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = vec![Box::new(|| {
            exec.yield_point(SchedEvent {
                task: 0,
                op: SchedOp::Prepare {
                    engine: "only".into(),
                },
            });
            ran.fetch_add(1, Ordering::SeqCst);
        })];
        exec.run_tasks(tasks);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert!(exec.finish_run().decisions.is_empty());
    }
}

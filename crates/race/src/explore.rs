//! The schedule explorer: bounded-exhaustive + seeded-random replay.
//!
//! For a [`Scenario`], the explorer first computes the **sequential
//! oracle** — the scenario run to completion on one worker with the
//! production executor — and then replays the scenario under many
//! interleavings of the scheduler's yield points:
//!
//! * **exhaustively** over every scheduling decision up to
//!   [`RaceConfig::bound`], by depth-first backtracking over the
//!   stepper's recorded decisions (same discipline as loom's bounded
//!   model checking), and
//! * **randomly** for [`RaceConfig::random_schedules`] extra runs where
//!   every decision is drawn from the seeded stream, covering depths
//!   the bound cuts off.
//!
//! Every replay is checked four ways: byte-identity of the warehouse
//! image against the oracle (summaries + auxiliary views), byte-identity
//! of the change log and the dead-letter store, WAL/LSN trace
//! invariants, and — when [`RaceConfig::check_static`] is on — the
//! `MD06x` static ordering pass over the recorded trace. Any finding
//! becomes a [`Violation`] carrying the exact choice sequence and seed
//! that reproduce it.

use std::fmt;
use std::sync::Arc;

use md_check::{check_schedule, SchedModel, SchedModelOp, Severity};
use md_maintain::{SchedEvent, SchedOp};
use md_obs::Obs;
use md_warehouse::Warehouse;

use crate::scenario::Scenario;
use crate::step::{RunRecord, StepExecutor};

/// Exploration knobs.
#[derive(Debug, Clone)]
pub struct RaceConfig {
    /// Worker threads the scheduler partitions engines across.
    pub workers: usize,
    /// Scheduling decisions enumerated exhaustively; deeper decisions
    /// are seeded-random.
    pub bound: usize,
    /// Hard cap on exhaustive schedules (safety valve; when hit, the
    /// report's `exhaustive` flag is false).
    pub max_schedules: usize,
    /// Extra runs with every decision randomized (depth coverage
    /// beyond the bound).
    pub random_schedules: usize,
    /// Base seed; every run's seed derives from it deterministically.
    pub seed: u64,
    /// Also run the `MD06x` static ordering pass over each trace.
    pub check_static: bool,
}

impl Default for RaceConfig {
    fn default() -> Self {
        RaceConfig {
            workers: 2,
            bound: 16,
            max_schedules: 5_000,
            random_schedules: 32,
            seed: 0xD1CE,
            check_static: true,
        }
    }
}

/// One schedule that violated an invariant, with everything needed to
/// reproduce it: `Explorer::replay(&violation.schedule, violation.seed)`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The full choice sequence of the offending run.
    pub schedule: Vec<usize>,
    /// The per-run seed (only relevant for choices the schedule does
    /// not cover).
    pub seed: u64,
    /// What was violated, one finding per line.
    pub findings: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "violation (seed={:#x}, schedule={:?}):",
            self.seed, self.schedule
        )?;
        for finding in &self.findings {
            writeln!(f, "  - {finding}")?;
        }
        Ok(())
    }
}

/// What an exploration run covered and found.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Scenario name.
    pub scenario: String,
    /// Worker count explored.
    pub workers: usize,
    /// The decision bound.
    pub bound: usize,
    /// The base seed (prints with every report so any run reproduces).
    pub seed: u64,
    /// Distinct schedules visited by the exhaustive enumeration.
    pub schedules: u64,
    /// Extra fully-randomized schedules.
    pub random_schedules: u64,
    /// Whether the within-bound enumeration ran to completion.
    pub exhaustive: bool,
    /// Deepest decision count seen in any run.
    pub max_decisions: usize,
    /// Total scheduling events across all runs.
    pub events: u64,
    /// Every schedule that violated an invariant.
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// `true` when no schedule violated any invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} schedules ({} random) at workers={} bound={} seed={:#x} — {}{}",
            self.scenario,
            self.schedules + self.random_schedules,
            self.random_schedules,
            self.workers,
            self.bound,
            self.seed,
            if self.exhaustive {
                "exhaustive within bound, "
            } else {
                "enumeration capped, "
            },
            if self.is_clean() {
                "no violations".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// The final state of one run, compared byte-for-byte across schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StateDigest {
    image: Vec<u8>,
    wal: Option<Vec<u8>>,
    dead: Vec<String>,
    errors: Vec<String>,
}

impl StateDigest {
    fn capture(wh: &Warehouse, errors: Vec<String>) -> Self {
        StateDigest {
            image: wh.save().expect("warehouse snapshot serializes"),
            wal: wh.wal_bytes().map(<[u8]>::to_vec),
            dead: wh
                .dead_letters()
                .iter()
                .map(|l| {
                    format!(
                        "table={} lsn={} changes={} index={:?} reason={}",
                        l.table.0,
                        l.lsn,
                        l.changes.len(),
                        l.change_index,
                        l.reason
                    )
                })
                .collect(),
            errors,
        }
    }
}

/// The schedule explorer over one scenario.
pub struct Explorer<'a> {
    scenario: &'a dyn Scenario,
    cfg: RaceConfig,
    obs: Obs,
}

impl<'a> Explorer<'a> {
    /// An explorer with no observability.
    pub fn new(scenario: &'a dyn Scenario, cfg: RaceConfig) -> Self {
        Explorer {
            scenario,
            cfg,
            obs: Obs::noop(),
        }
    }

    /// Registers the explorer's metrics (`race.schedules_explored`,
    /// `race.explored_depth`, `race.violations`,
    /// `race.events_per_schedule`) in `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the full exploration: oracle, bounded-exhaustive DFS, then
    /// the randomized tail.
    pub fn run(&self) -> ExploreReport {
        let schedules_ctr = self.obs.counter("race.schedules_explored", &[]);
        let violations_ctr = self.obs.counter("race.violations", &[]);
        let depth_gauge = self.obs.gauge("race.explored_depth", &[]);
        let events_hist = self.obs.histogram("race.events_per_schedule", &[]);

        let oracle = self.sequential_oracle();
        let mut report = ExploreReport {
            scenario: self.scenario.name().to_owned(),
            workers: self.cfg.workers,
            bound: self.cfg.bound,
            seed: self.cfg.seed,
            exhaustive: true,
            ..ExploreReport::default()
        };

        // Bounded-exhaustive DFS: replay, then backtrack the deepest
        // within-bound decision that still has an untaken branch.
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            if report.schedules >= self.cfg.max_schedules as u64 {
                report.exhaustive = false;
                break;
            }
            let seed = per_run_seed(self.cfg.seed, report.schedules);
            let (record, digest) = self.run_schedule(&prefix, self.cfg.bound, seed);
            report.schedules += 1;
            schedules_ctr.incr();
            report.max_decisions = report.max_decisions.max(record.decisions.len());
            depth_gauge.set(report.max_decisions as i64);
            report.events += record.trace.len() as u64;
            events_hist.observe(record.trace.len() as u64);
            let findings = self.check_run(&record, &digest, &oracle);
            if !findings.is_empty() {
                violations_ctr.incr();
                report.violations.push(Violation {
                    schedule: record.schedule(),
                    seed,
                    findings,
                });
            }

            let mut next = None;
            for i in (0..record.decisions.len().min(self.cfg.bound)).rev() {
                let d = record.decisions[i];
                if d.picked + 1 < d.options {
                    let mut p = record.schedule();
                    p.truncate(i);
                    p.push(d.picked + 1);
                    next = Some(p);
                    break;
                }
            }
            match next {
                Some(p) => prefix = p,
                None => break,
            }
        }

        // Randomized tail: every decision from the seeded stream.
        for k in 0..self.cfg.random_schedules {
            let seed = per_run_seed(self.cfg.seed ^ 0xACE0_FBA5E, k as u64);
            let (record, digest) = self.run_schedule(&[], 0, seed);
            report.random_schedules += 1;
            schedules_ctr.incr();
            report.max_decisions = report.max_decisions.max(record.decisions.len());
            depth_gauge.set(report.max_decisions as i64);
            report.events += record.trace.len() as u64;
            events_hist.observe(record.trace.len() as u64);
            let findings = self.check_run(&record, &digest, &oracle);
            if !findings.is_empty() {
                violations_ctr.incr();
                report.violations.push(Violation {
                    schedule: record.schedule(),
                    seed,
                    findings,
                });
            }
        }
        report
    }

    /// Replays one schedule and returns its findings — empty when the
    /// run upholds every invariant. `Violation::schedule` +
    /// `Violation::seed` reproduce a reported violation exactly.
    pub fn replay(&self, schedule: &[usize], seed: u64) -> Vec<String> {
        let oracle = self.sequential_oracle();
        let (record, digest) = self.run_schedule(schedule, self.cfg.bound, seed);
        self.check_run(&record, &digest, &oracle)
    }

    /// The scenario run on one worker with the production executor: the
    /// serialization every explored schedule must be equivalent to.
    fn sequential_oracle(&self) -> StateDigest {
        let mut wh = self.scenario.build(Warehouse::builder().workers(1));
        let errors = apply_all(&mut wh, self.scenario);
        StateDigest::capture(&wh, errors)
    }

    fn run_schedule(&self, forced: &[usize], bound: usize, seed: u64) -> (RunRecord, StateDigest) {
        let exec = Arc::new(StepExecutor::new());
        exec.begin_run(forced, bound, seed);
        let builder = Warehouse::builder()
            .workers(self.cfg.workers)
            .executor(exec.clone());
        let mut wh = self.scenario.build(builder);
        let errors = apply_all(&mut wh, self.scenario);
        let record = exec.finish_run();
        let digest = StateDigest::capture(&wh, errors);
        (record, digest)
    }

    fn check_run(
        &self,
        record: &RunRecord,
        digest: &StateDigest,
        oracle: &StateDigest,
    ) -> Vec<String> {
        let mut findings = Vec::new();
        if digest.image != oracle.image {
            findings.push("summary/auxiliary state diverged from the sequential oracle".to_owned());
        }
        if digest.wal != oracle.wal {
            findings.push("change log diverged from the sequential oracle".to_owned());
        }
        if digest.dead != oracle.dead {
            findings.push(format!(
                "dead letters diverged from the sequential oracle ({:?} vs {:?})",
                digest.dead, oracle.dead
            ));
        }
        if digest.errors != oracle.errors {
            findings.push(format!(
                "apply errors diverged from the sequential oracle ({:?} vs {:?})",
                digest.errors, oracle.errors
            ));
        }
        findings.extend(trace_invariants(&record.trace, digest.wal.is_some()));
        if self.cfg.check_static {
            let model = model_from_trace(&record.trace, digest.wal.is_some());
            let report = check_schedule(&model);
            for d in report.diagnostics() {
                if d.severity == Severity::Error {
                    findings.push(format!("{}: {}", d.code.as_str(), d.message));
                }
            }
        }
        findings
    }
}

fn apply_all(wh: &mut Warehouse, scenario: &dyn Scenario) -> Vec<String> {
    let mut errors = Vec::new();
    for batch in scenario.batches() {
        if let Err(e) = wh.apply_batch(batch) {
            errors.push(e.to_string());
        }
    }
    errors
}

/// splitmix64 over the base seed and run index: independent, documented,
/// reproducible per-run seeds.
fn per_run_seed(base: u64, run: u64) -> u64 {
    let mut z = base
        .wrapping_add(run.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Direct trace checks: per-table LSN monotonicity across the whole run
/// and commit-after-append within each batch.
fn trace_invariants(trace: &[SchedEvent], wal_enabled: bool) -> Vec<String> {
    let mut findings = Vec::new();
    let mut last_lsn: std::collections::BTreeMap<usize, u64> = Default::default();
    let mut appended_this_batch = false;
    for event in trace {
        match &event.op {
            SchedOp::BatchStart { .. } => appended_this_batch = false,
            SchedOp::WalAppend { table, lsn } => {
                appended_this_batch = true;
                if let Some(prev) = last_lsn.get(&table.0) {
                    if *lsn <= *prev {
                        findings.push(format!(
                            "WAL LSN regression on table {}: {} after {}",
                            table.0, lsn, prev
                        ));
                    }
                }
                last_lsn.insert(table.0, *lsn);
            }
            SchedOp::Commit { engine } if wal_enabled && !appended_this_batch => {
                findings.push(format!(
                    "engine '{engine}' committed before the batch's WAL append"
                ));
            }
            _ => {}
        }
    }
    findings
}

/// Converts a recorded trace into the static pass's abstract model.
/// Worker task `t` becomes thread `t + 1`; the coordinator is thread 0.
fn model_from_trace(trace: &[SchedEvent], wal_enabled: bool) -> SchedModel {
    let mut model = SchedModel::new();
    model.wal_enabled = wal_enabled;
    for event in trace {
        let thread = if event.task == md_maintain::COORDINATOR {
            0
        } else {
            event.task + 1
        };
        match &event.op {
            SchedOp::BatchStart { .. } => model.push(thread, SchedModelOp::BatchStart),
            SchedOp::Prepare { engine } => {
                model.push(
                    thread,
                    SchedModelOp::Acquire {
                        engine: engine.clone(),
                    },
                );
                model.push(
                    thread,
                    SchedModelOp::Prepare {
                        engine: engine.clone(),
                    },
                );
            }
            SchedOp::PrepareDone { engine, .. } => model.push(
                thread,
                SchedModelOp::Release {
                    engine: engine.clone(),
                },
            ),
            SchedOp::WalAppend { table, lsn } => model.push(
                thread,
                SchedModelOp::WalAppend {
                    table: format!("t{}", table.0),
                    lsn: *lsn,
                },
            ),
            SchedOp::Commit { engine } => model.push(
                thread,
                SchedModelOp::Commit {
                    engine: engine.clone(),
                },
            ),
            SchedOp::Rollback { engine } => model.push(
                thread,
                SchedModelOp::Rollback {
                    engine: engine.clone(),
                },
            ),
            SchedOp::BatchEnd { .. } => model.push(thread, SchedModelOp::BatchEnd),
        }
    }
    model
}

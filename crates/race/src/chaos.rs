//! Seeded chaos exploration: randomized fault storms against the
//! fault-domain isolation machinery.
//!
//! Where the [`Explorer`](crate::Explorer) enumerates *interleavings* of
//! one fixed workload, chaos varies the **faults**: for every seed it
//! generates a retail workload plus a storm of 1–3 injected faults —
//! transient I/O errors on the change-log append and snapshot save,
//! mid-prepare panics and crashes pinned to individual summary engines —
//! and runs the warehouse under quarantine + auto-repair + retry at each
//! configured worker count, on the production thread executor. Every run
//! is checked against five invariants:
//!
//! 1. no batch is rejected (quarantine absorbs engine failures, retry
//!    absorbs transient I/O),
//! 2. every summary audits clean at the end (source-free `V == recon(X)`),
//! 3. the quarantine set drains: after the final `repair_all` no summary
//!    is left isolated,
//! 4. the change log's LSNs are strictly increasing per table, and
//! 5. the final state — snapshot image, change log, dead letters, apply
//!    errors — is **byte-identical** to the same storm replayed
//!    sequentially on one worker.
//!
//! Faults are armed through [`PlannedFault`] on a fresh plan per run, and
//! engine-level faults use scoped points (`point@summary`), so a storm is
//! deterministic under any thread timing — which is exactly what makes
//! invariant 5 checkable.

use md_maintain::wal::Wal;
use md_maintain::IoFaultKind;
use md_warehouse::Warehouse;

use crate::scenario::{retail_scenario, PlannedFault, Scenario, SnapshotScenario};

/// Chaos exploration knobs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of distinct fault storms (one workload + storm per seed).
    pub seeds: u64,
    /// First seed; storms use `start_seed..start_seed + seeds`.
    pub start_seed: u64,
    /// Worker counts each storm runs under (the sequential oracle at
    /// `workers = 1` is always run in addition).
    pub workers: Vec<usize>,
    /// Batches per workload.
    pub batches: usize,
    /// Seeded sale changes per batch.
    pub changes_per_batch: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seeds: 64,
            start_seed: 0xC4A0_5000,
            workers: vec![2, 4],
            batches: 3,
            changes_per_batch: 6,
        }
    }
}

/// What a chaos exploration covered and found.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Storms generated (= seeds).
    pub seeds: u64,
    /// Warehouse runs executed (storms × worker counts, + oracles).
    pub runs: u64,
    /// Total faults armed across all storms.
    pub faults_armed: u64,
    /// Mid-prepare panics among them.
    pub panics_armed: u64,
    /// Hard-crash injections among them.
    pub crashes_armed: u64,
    /// Transient I/O faults among them.
    pub transients_armed: u64,
    /// Every invariant violation, with the seed and worker count that
    /// reproduce it.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// `true` when no storm violated any invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "chaos: {} storms, {} runs, {} faults armed \
             ({} panics, {} crashes, {} transient) — {}",
            self.seeds,
            self.runs,
            self.faults_armed,
            self.panics_armed,
            self.crashes_armed,
            self.transients_armed,
            if self.is_clean() {
                "no violations".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// injected fault-point panics and delegates everything else to the
/// previously installed hook. A chaos exploration fires hundreds of
/// injected panics that are all caught at the task boundary; without
/// this, each one would spray a backtrace over the output.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected panic at fault point"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// xorshift64*: a tiny seeded stream for storm generation. Not
/// statistical-grade, but every draw is reproducible from the seed.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // splitmix the seed so consecutive seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift((z ^ (z >> 31)) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The six summaries of the retail race workload, targets for
/// engine-scoped faults.
const STORM_VIEWS: [&str; 6] = [
    "product_sales",
    "product_sales_max",
    "store_revenue",
    "daily_product",
    "monthly_volume",
    "country_revenue",
];

/// Generates one storm: 1–3 faults drawn from the seeded stream. Every
/// fault targets a distinct point — stacked transients on one point
/// could outlast the retry budget, and a panic stacked on a crash at one
/// engine could fire the leftover during repair replay, outside the
/// scheduler's catch. Panics always fire on the engine's first
/// traversal, i.e. during the prepare fan-out, where they are caught.
fn storm_for(seed: u64, batches: usize) -> Vec<PlannedFault> {
    let mut rng = XorShift::new(seed);
    let mut views: Vec<&str> = STORM_VIEWS.to_vec();
    let mut faults = Vec::new();
    let (mut wal_used, mut save_used) = (false, false);
    let n = 1 + rng.below(3);
    for _ in 0..n {
        match rng.below(4) {
            0 if !wal_used => {
                wal_used = true;
                // Transient failure of the change-log append, possibly a
                // torn write the retried append must truncate away.
                let kind = [IoFaultKind::Fsync, IoFaultKind::Write, IoFaultKind::Torn]
                    [rng.below(3) as usize];
                faults.push(PlannedFault::Transient {
                    point: "warehouse.wal.append".into(),
                    nth: rng.below(batches.max(1) as u64),
                    kind,
                    times: 1 + rng.below(2),
                });
            }
            1 if !save_used => {
                save_used = true;
                // Transient failure of the snapshot save.
                let kind = [IoFaultKind::Fsync, IoFaultKind::Write][rng.below(2) as usize];
                faults.push(PlannedFault::Transient {
                    point: "warehouse.save".into(),
                    nth: 0,
                    kind,
                    times: 1 + rng.below(2),
                });
            }
            0 | 1 => continue,
            _ => {
                // A summary engine failing mid-prepare: panic, crash, or
                // a short transient run of apply errors.
                if views.is_empty() {
                    continue;
                }
                let view = views.remove(rng.below(views.len() as u64) as usize);
                let point = format!("engine.apply.change@{view}");
                match rng.below(3) {
                    0 => faults.push(PlannedFault::Panic { point, nth: 0 }),
                    1 => faults.push(PlannedFault::Crash {
                        point,
                        nth: rng.below(2),
                    }),
                    _ => faults.push(PlannedFault::Transient {
                        point,
                        nth: rng.below(2),
                        kind: IoFaultKind::Read,
                        times: 1 + rng.below(2),
                    }),
                }
            }
        }
    }
    faults
}

/// The final observable state of one chaos run, compared byte-for-byte
/// between worker counts.
#[derive(PartialEq, Eq)]
struct ChaosDigest {
    image: Vec<u8>,
    wal: Option<Vec<u8>>,
    dead: Vec<String>,
    errors: Vec<String>,
}

/// Runs one storm at one worker count and checks the local invariants
/// (rejections, audits, drain, LSN order). Cross-run byte-identity is
/// checked by the caller against the `workers = 1` digest.
fn run_storm(
    scenario: &SnapshotScenario,
    workers: usize,
    seed: u64,
    violations: &mut Vec<String>,
) -> ChaosDigest {
    let tag = format!("seed={seed:#x} workers={workers}");
    let mut wh = scenario.build(Warehouse::builder().workers(workers));
    let mut errors = Vec::new();
    for batch in scenario.batches() {
        if let Err(e) = wh.apply_batch(batch) {
            errors.push(e.to_string());
        }
    }
    for (name, result) in wh.repair_all() {
        if let Err(e) = result {
            violations.push(format!("{tag}: repair of '{name}' failed: {e}"));
        }
    }

    // 1. Quarantine + retry absorb every storm fault: no rejections.
    for e in &errors {
        violations.push(format!("{tag}: batch rejected: {e}"));
    }
    // 2. Every summary audits clean.
    for (name, report) in wh.audit() {
        if !report.is_clean() {
            violations.push(format!("{tag}: audit of '{name}' failed: {report:?}"));
        }
    }
    // 3. The quarantine set drains.
    let stuck: Vec<&str> = wh.quarantined().map(|(n, _)| n).collect();
    if !stuck.is_empty() {
        violations.push(format!("{tag}: quarantine not drained: {stuck:?}"));
    }
    // 4. Per-table LSN monotonicity over the surviving change log.
    if let Some(bytes) = wh.wal_bytes() {
        match Wal::replay(bytes) {
            Err(e) => violations.push(format!("{tag}: change log does not replay: {e}")),
            Ok((records, _)) => {
                let mut last: std::collections::BTreeMap<usize, u64> = Default::default();
                for r in &records {
                    if let Some(prev) = last.get(&r.table.0) {
                        if r.lsn <= *prev {
                            violations.push(format!(
                                "{tag}: WAL LSN regression on table {}: {} after {}",
                                r.table.0, r.lsn, prev
                            ));
                        }
                    }
                    last.insert(r.table.0, r.lsn);
                }
            }
        }
    }

    ChaosDigest {
        image: wh.save().expect("chaos warehouse snapshot serializes"),
        wal: wh.wal_bytes().map(<[u8]>::to_vec),
        dead: wh
            .dead_letters()
            .iter()
            .map(|l| {
                format!(
                    "table={} lsn={} changes={} reason={}",
                    l.table.0,
                    l.lsn,
                    l.changes.len(),
                    l.reason
                )
            })
            .collect(),
        errors,
    }
}

/// Runs the full chaos exploration: for every seed, one storm replayed
/// at every configured worker count plus the sequential oracle, with all
/// invariants checked.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    silence_injected_panics();
    let mut report = ChaosReport {
        seeds: cfg.seeds,
        ..ChaosReport::default()
    };
    for i in 0..cfg.seeds {
        let seed = cfg.start_seed.wrapping_add(i);
        let storm = storm_for(seed, cfg.batches);
        report.faults_armed += storm.len() as u64;
        for fault in &storm {
            match fault {
                PlannedFault::Panic { .. } => report.panics_armed += 1,
                PlannedFault::Crash { .. } => report.crashes_armed += 1,
                PlannedFault::Transient { .. } => report.transients_armed += 1,
            }
        }
        let mut scenario = retail_scenario(cfg.batches, cfg.changes_per_batch, seed)
            .renamed(format!("chaos-{seed:#x}"))
            .with_quarantine(true);
        for fault in &storm {
            scenario = scenario.with_fault(fault.clone());
        }

        // The sequential baseline runs the identical storm on one worker.
        let oracle = run_storm(&scenario, 1, seed, &mut report.violations);
        report.runs += 1;
        for &workers in &cfg.workers {
            let digest = run_storm(&scenario, workers, seed, &mut report.violations);
            report.runs += 1;
            // 5. Byte-identity with the sequential run of the same storm.
            if digest.image != oracle.image {
                report.violations.push(format!(
                    "seed={seed:#x} workers={workers}: state diverged from sequential run"
                ));
            }
            if digest.wal != oracle.wal {
                report.violations.push(format!(
                    "seed={seed:#x} workers={workers}: change log diverged from sequential run"
                ));
            }
            if digest.dead != oracle.dead {
                report.violations.push(format!(
                    "seed={seed:#x} workers={workers}: dead letters diverged \
                     ({:?} vs {:?})",
                    digest.dead, oracle.dead
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_are_reproducible_and_nonempty() {
        for seed in 0..50 {
            let a = storm_for(seed, 3);
            let b = storm_for(seed, 3);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert!(!a.is_empty() && a.len() <= 3, "seed {seed}: {a:?}");
        }
    }

    #[test]
    fn engine_faults_never_stack_on_one_summary() {
        for seed in 0..200 {
            let storm = storm_for(seed, 3);
            let mut scoped: Vec<&str> = storm
                .iter()
                .map(|f| match f {
                    PlannedFault::Crash { point, .. }
                    | PlannedFault::Panic { point, .. }
                    | PlannedFault::Transient { point, .. } => point.as_str(),
                })
                .filter(|p| p.contains('@'))
                .collect();
            let total = scoped.len();
            scoped.sort_unstable();
            scoped.dedup();
            assert_eq!(scoped.len(), total, "seed {seed}: duplicate engine target");
        }
    }

    #[test]
    fn a_small_chaos_run_is_clean() {
        let report = run_chaos(&ChaosConfig {
            seeds: 8,
            workers: vec![2],
            ..ChaosConfig::default()
        });
        assert_eq!(report.seeds, 8);
        assert_eq!(report.runs, 16, "8 storms × (1 oracle + 1 explored)");
        assert!(report.faults_armed >= 8);
        assert!(
            report.is_clean(),
            "{}\n{}",
            report.summary(),
            report.violations.join("\n")
        );
    }
}

//! Workloads for the schedule explorer.
//!
//! A [`Scenario`] is a reproducible warehouse run: how to build the
//! warehouse (from a snapshot image, so hundreds of replays are cheap)
//! and which batches to apply. The explorer replays the same scenario
//! under many interleavings and compares every outcome against the
//! sequential oracle.

use md_relation::{row, Catalog, Change};
use md_warehouse::{ChangeBatch, Warehouse, WarehouseBuilder};
use md_workload::retail::{generate_retail, Contracts, RetailParams};
use md_workload::updates::{product_brand_changes, sale_changes, UpdateMix};
use md_workload::views;

/// A reproducible warehouse run for the explorer.
pub trait Scenario {
    /// Display name, used in reports.
    fn name(&self) -> &str;

    /// Builds the warehouse under the given configuration (the explorer
    /// sets the worker count and the executor before calling this).
    fn build(&self, builder: WarehouseBuilder) -> Warehouse;

    /// The batches to apply, in order.
    fn batches(&self) -> &[ChangeBatch];
}

/// A scenario that rebuilds its warehouse from a saved snapshot image —
/// the cheap, deterministic way to get an identical starting state for
/// every replayed schedule.
#[derive(Debug, Clone)]
pub struct SnapshotScenario {
    name: String,
    catalog: Catalog,
    image: Vec<u8>,
    batches: Vec<ChangeBatch>,
    plant_commit_before_append: bool,
}

impl SnapshotScenario {
    /// A scenario from an explicit snapshot and batch list.
    pub fn new(
        name: impl Into<String>,
        catalog: Catalog,
        image: Vec<u8>,
        batches: Vec<ChangeBatch>,
    ) -> Self {
        SnapshotScenario {
            name: name.into(),
            catalog,
            image,
            batches,
            plant_commit_before_append: false,
        }
    }

    /// Enables the warehouse's planted commit-before-append bug, so a
    /// test can demonstrate that the explorer catches it.
    pub fn with_planted_bug(mut self) -> Self {
        self.plant_commit_before_append = true;
        self
    }

    /// The source catalog the scenario's warehouse runs over.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The scenario under a different display name.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The scenario with its batch list replaced — for deriving delivery
    /// permutations from a shared snapshot.
    pub fn with_batches(mut self, batches: Vec<ChangeBatch>) -> Self {
        self.batches = batches;
        self
    }
}

impl Scenario for SnapshotScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, builder: WarehouseBuilder) -> Warehouse {
        let builder = if self.plant_commit_before_append {
            builder.plant_commit_before_append()
        } else {
            builder
        };
        builder
            .restore(&self.catalog, &self.image)
            .expect("scenario snapshot restores under any configuration")
    }

    fn batches(&self) -> &[ChangeBatch] {
        &self.batches
    }
}

/// A count-only volume view, so the retail scenario has six summaries
/// over the fact table (three per worker at `workers = 2`).
const MONTHLY_VOLUME_SQL: &str = "\
CREATE VIEW monthly_volume AS
SELECT time.month, COUNT(*) AS n
FROM sale, time
WHERE sale.timeid = time.id
GROUP BY time.month";

/// A country-level rollup, sixth summary of the retail scenario.
const COUNTRY_REVENUE_SQL: &str = "\
CREATE VIEW country_revenue AS
SELECT store.country, SUM(price) AS Revenue, COUNT(*) AS n
FROM sale, store
WHERE sale.storeid = store.id
GROUP BY store.country";

/// The view definitions of the retail race scenario: the workload's four
/// paper views plus two extra rollups. All six cover the `sale` fact, so
/// every sale batch fans out to every engine.
pub const RETAIL_RACE_VIEW_COUNT: usize = 6;

fn retail_views() -> [&'static str; RETAIL_RACE_VIEW_COUNT] {
    [
        views::PRODUCT_SALES_SQL,
        views::PRODUCT_SALES_MAX_SQL,
        views::STORE_REVENUE_SQL,
        views::DAILY_PRODUCT_SQL,
        MONTHLY_VOLUME_SQL,
        COUNTRY_REVENUE_SQL,
    ]
}

/// The standard retail exploration workload: the tiny retail star under
/// tight contracts, six summaries over the fact table, and `n_batches`
/// mixed batches of `changes_per_batch` seeded sale changes (odd batches
/// also carry two product-brand renames, so the fan-out spans two source
/// tables). Fully deterministic under `seed`.
pub fn retail_scenario(n_batches: usize, changes_per_batch: usize, seed: u64) -> SnapshotScenario {
    let (mut db, schema) = generate_retail(RetailParams::tiny(), Contracts::Tight);
    let mut wh = Warehouse::new(db.catalog());
    for sql in retail_views() {
        wh.add_summary_sql(sql, &db)
            .expect("retail race views are valid");
    }
    let image = wh.save().expect("fresh warehouse snapshot serializes");
    let catalog = db.catalog().clone();

    let mut batches = Vec::with_capacity(n_batches);
    for b in 0..n_batches {
        let mut batch = ChangeBatch::new();
        batch.extend(
            schema.sale,
            sale_changes(
                &mut db,
                &schema,
                changes_per_batch,
                UpdateMix::balanced(),
                seed.wrapping_add(b as u64),
            ),
        );
        if b % 2 == 1 {
            batch.extend(
                schema.product,
                product_brand_changes(&mut db, &schema, 2, seed.wrapping_add(100 + b as u64)),
            );
        }
        batches.push(batch);
    }
    SnapshotScenario::new("retail", catalog, image, batches)
}

/// The retail scenario with a poisoned middle batch: its second batch
/// deletes a `sale` row that never existed, so every engine rejects it
/// and the batch lands in the dead-letter store. The explorer asserts
/// that the rejection — error message, dead letters, surviving state —
/// is identical on every interleaving.
pub fn retail_fault_scenario(seed: u64) -> SnapshotScenario {
    let mut scenario = retail_scenario(3, 6, seed);
    let schema_sale = {
        // The poisoned row targets the fact table by name, independent
        // of TableId assignment order.
        scenario
            .catalog
            .table_id("sale")
            .expect("retail catalog has a sale table")
    };
    let poison = Change::Delete(row![99_999_999_i64, 1_i64, 1_i64, 1_i64, 9.75_f64]);
    let mut batch = ChangeBatch::new();
    batch.push(schema_sale, poison);
    scenario.batches[1] = batch;
    scenario.name = "retail-poison".into();
    scenario
}

//! Workloads for the schedule explorer.
//!
//! A [`Scenario`] is a reproducible warehouse run: how to build the
//! warehouse (from a snapshot image, so hundreds of replays are cheap)
//! and which batches to apply. The explorer replays the same scenario
//! under many interleavings and compares every outcome against the
//! sequential oracle.

use md_maintain::{FaultPlan, IoFaultKind, RetryPolicy};
use md_relation::{row, Catalog, Change};
use md_warehouse::{ChangeBatch, Warehouse, WarehouseBuilder};
use md_workload::retail::{generate_retail, Contracts, RetailParams};
use md_workload::updates::{product_brand_changes, sale_changes, UpdateMix};
use md_workload::views;

/// A fault the scenario arms on **every** build — the explored replay
/// and the sequential oracle alike — so faulted runs still compare
/// byte-for-byte against the oracle. Points may be scoped
/// (`point@summary`) to pin a fault to one engine regardless of which
/// worker it lands on.
#[derive(Debug, Clone)]
pub enum PlannedFault {
    /// A hard stop ([`FaultPlan::arm`]): fires `Injected` once.
    Crash {
        /// Injection-point name, optionally `point@summary`-scoped.
        point: String,
        /// Traversals of the point to let through before firing.
        nth: u64,
    },
    /// A worker death ([`FaultPlan::arm_panic`]): panics once.
    Panic {
        /// Injection-point name, optionally `point@summary`-scoped.
        point: String,
        /// Traversals of the point to let through before firing.
        nth: u64,
    },
    /// A transient I/O failure ([`FaultPlan::arm_transient`]): fires for
    /// `times` consecutive traversals, then heals.
    Transient {
        /// Injection-point name, optionally `point@summary`-scoped.
        point: String,
        /// Traversals of the point to let through before firing.
        nth: u64,
        /// What kind of I/O error the point produces.
        kind: IoFaultKind,
        /// Consecutive firings before the fault heals.
        times: u64,
    },
}

impl PlannedFault {
    fn arm_into(&self, plan: &mut FaultPlan) {
        match self {
            PlannedFault::Crash { point, nth } => plan.arm(point, *nth),
            PlannedFault::Panic { point, nth } => plan.arm_panic(point, *nth),
            PlannedFault::Transient {
                point,
                nth,
                kind,
                times,
            } => plan.arm_transient(point, *nth, *kind, *times),
        }
    }
}

/// A reproducible warehouse run for the explorer.
pub trait Scenario {
    /// Display name, used in reports.
    fn name(&self) -> &str;

    /// Builds the warehouse under the given configuration (the explorer
    /// sets the worker count and the executor before calling this).
    fn build(&self, builder: WarehouseBuilder) -> Warehouse;

    /// The batches to apply, in order.
    fn batches(&self) -> &[ChangeBatch];
}

/// A scenario that rebuilds its warehouse from a saved snapshot image —
/// the cheap, deterministic way to get an identical starting state for
/// every replayed schedule.
#[derive(Debug, Clone)]
pub struct SnapshotScenario {
    name: String,
    catalog: Catalog,
    image: Vec<u8>,
    batches: Vec<ChangeBatch>,
    plant_commit_before_append: bool,
    faults: Vec<PlannedFault>,
    quarantine: bool,
    auto_repair: bool,
    retry: Option<RetryPolicy>,
    dead_letter_capacity: Option<usize>,
}

impl SnapshotScenario {
    /// A scenario from an explicit snapshot and batch list.
    pub fn new(
        name: impl Into<String>,
        catalog: Catalog,
        image: Vec<u8>,
        batches: Vec<ChangeBatch>,
    ) -> Self {
        SnapshotScenario {
            name: name.into(),
            catalog,
            image,
            batches,
            plant_commit_before_append: false,
            faults: Vec::new(),
            quarantine: false,
            auto_repair: false,
            retry: None,
            dead_letter_capacity: None,
        }
    }

    /// Enables the warehouse's planted commit-before-append bug, so a
    /// test can demonstrate that the explorer catches it.
    pub fn with_planted_bug(mut self) -> Self {
        self.plant_commit_before_append = true;
        self
    }

    /// The source catalog the scenario's warehouse runs over.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The scenario under a different display name.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The scenario with its batch list replaced — for deriving delivery
    /// permutations from a shared snapshot.
    pub fn with_batches(mut self, batches: Vec<ChangeBatch>) -> Self {
        self.batches = batches;
        self
    }

    /// Arms `fault` on every build of the scenario. Because the oracle
    /// and every explored schedule arm an identical fresh [`FaultPlan`],
    /// a deterministic fault keeps all runs comparable.
    pub fn with_fault(mut self, fault: PlannedFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Enables per-summary quarantine on every build, optionally with
    /// the auto-repair policy.
    pub fn with_quarantine(mut self, auto_repair: bool) -> Self {
        self.quarantine = true;
        self.auto_repair = auto_repair;
        self
    }

    /// Overrides the I/O retry policy on every build.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Bounds the dead-letter store on every build.
    pub fn with_dead_letter_capacity(mut self, capacity: usize) -> Self {
        self.dead_letter_capacity = Some(capacity);
        self
    }

    /// The faults armed on every build.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }
}

impl Scenario for SnapshotScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, builder: WarehouseBuilder) -> Warehouse {
        let mut builder = if self.plant_commit_before_append {
            builder.plant_commit_before_append()
        } else {
            builder
        };
        if !self.faults.is_empty() {
            // A fresh plan per build: countdowns and one-shot arms reset,
            // so every replay (and the oracle) sees identical faults.
            let mut plan = FaultPlan::default();
            for fault in &self.faults {
                fault.arm_into(&mut plan);
            }
            builder = builder.fault_plan(plan);
        }
        builder = builder
            .quarantine(self.quarantine)
            .auto_repair(self.auto_repair);
        if let Some(retry) = self.retry {
            builder = builder.retry_policy(retry);
        }
        if let Some(capacity) = self.dead_letter_capacity {
            builder = builder.dead_letter_capacity(capacity);
        }
        builder
            .restore(&self.catalog, &self.image)
            .expect("scenario snapshot restores under any configuration")
    }

    fn batches(&self) -> &[ChangeBatch] {
        &self.batches
    }
}

/// A count-only volume view, so the retail scenario has six summaries
/// over the fact table (three per worker at `workers = 2`).
const MONTHLY_VOLUME_SQL: &str = "\
CREATE VIEW monthly_volume AS
SELECT time.month, COUNT(*) AS n
FROM sale, time
WHERE sale.timeid = time.id
GROUP BY time.month";

/// A country-level rollup, sixth summary of the retail scenario.
const COUNTRY_REVENUE_SQL: &str = "\
CREATE VIEW country_revenue AS
SELECT store.country, SUM(price) AS Revenue, COUNT(*) AS n
FROM sale, store
WHERE sale.storeid = store.id
GROUP BY store.country";

/// The view definitions of the retail race scenario: the workload's four
/// paper views plus two extra rollups. All six cover the `sale` fact, so
/// every sale batch fans out to every engine.
pub const RETAIL_RACE_VIEW_COUNT: usize = 6;

fn retail_views() -> [&'static str; RETAIL_RACE_VIEW_COUNT] {
    [
        views::PRODUCT_SALES_SQL,
        views::PRODUCT_SALES_MAX_SQL,
        views::STORE_REVENUE_SQL,
        views::DAILY_PRODUCT_SQL,
        MONTHLY_VOLUME_SQL,
        COUNTRY_REVENUE_SQL,
    ]
}

/// The standard retail exploration workload: the tiny retail star under
/// tight contracts, six summaries over the fact table, and `n_batches`
/// mixed batches of `changes_per_batch` seeded sale changes (odd batches
/// also carry two product-brand renames, so the fan-out spans two source
/// tables). Fully deterministic under `seed`.
pub fn retail_scenario(n_batches: usize, changes_per_batch: usize, seed: u64) -> SnapshotScenario {
    let (mut db, schema) = generate_retail(RetailParams::tiny(), Contracts::Tight);
    let mut wh = Warehouse::new(db.catalog());
    for sql in retail_views() {
        wh.add_summary_sql(sql, &db)
            .expect("retail race views are valid");
    }
    let image = wh.save().expect("fresh warehouse snapshot serializes");
    let catalog = db.catalog().clone();

    let mut batches = Vec::with_capacity(n_batches);
    for b in 0..n_batches {
        let mut batch = ChangeBatch::new();
        batch.extend(
            schema.sale,
            sale_changes(
                &mut db,
                &schema,
                changes_per_batch,
                UpdateMix::balanced(),
                seed.wrapping_add(b as u64),
            ),
        );
        if b % 2 == 1 {
            batch.extend(
                schema.product,
                product_brand_changes(&mut db, &schema, 2, seed.wrapping_add(100 + b as u64)),
            );
        }
        batches.push(batch);
    }
    SnapshotScenario::new("retail", catalog, image, batches)
}

/// The retail scenario with a poisoned middle batch: its second batch
/// deletes a `sale` row that never existed, so every engine rejects it
/// and the batch lands in the dead-letter store. The explorer asserts
/// that the rejection — error message, dead letters, surviving state —
/// is identical on every interleaving.
pub fn retail_fault_scenario(seed: u64) -> SnapshotScenario {
    let mut scenario = retail_scenario(3, 6, seed);
    let schema_sale = {
        // The poisoned row targets the fact table by name, independent
        // of TableId assignment order.
        scenario
            .catalog
            .table_id("sale")
            .expect("retail catalog has a sale table")
    };
    let poison = Change::Delete(row![99_999_999_i64, 1_i64, 1_i64, 1_i64, 9.75_f64]);
    let mut batch = ChangeBatch::new();
    batch.push(schema_sale, poison);
    scenario.batches[1] = batch;
    scenario.name = "retail-poison".into();
    scenario
}

/// The retail scenario under fault-domain isolation with one worker
/// dying mid-prepare: the `product_sales` engine panics on its first
/// change of the first batch, gets quarantined, and auto-repair rebuilds
/// it from its auxiliary views before the next batch. The scoped point
/// (`@product_sales`) makes the panic land on the same engine no matter
/// which worker thread prepares it, so every schedule — and the
/// sequential oracle — converges to the same repaired state.
pub fn retail_panic_scenario(seed: u64) -> SnapshotScenario {
    retail_scenario(3, 6, seed)
        .renamed("retail-panic")
        .with_quarantine(true)
        .with_fault(PlannedFault::Panic {
            point: "engine.apply.change@product_sales".into(),
            nth: 0,
        })
}

/// The retail scenario with a transient torn-write storm on the change
/// log: the second batch's WAL append fails twice (each failure leaving
/// a torn frame behind) before healing. The default retry policy
/// truncates the torn tail and re-appends, so the batch commits and the
/// final log is byte-identical to a fault-free run's.
pub fn retail_transient_wal_scenario(seed: u64) -> SnapshotScenario {
    retail_scenario(3, 6, seed)
        .renamed("retail-transient-wal")
        .with_fault(PlannedFault::Transient {
            point: "warehouse.wal.append".into(),
            nth: 1,
            kind: IoFaultKind::Torn,
            times: 2,
        })
}

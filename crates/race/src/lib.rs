//! # md-race — deterministic concurrency checking for the scheduler
//!
//! A dependency-free, loom-style model checker for the warehouse's
//! batch-maintenance scheduler. The scheduler's fan-out/join, WAL-append
//! and commit steps all run against `md-maintain`'s `Executor` trait; in
//! production that is real threads ([`md_maintain::ThreadExecutor`]),
//! under test it is this crate's cooperative [`StepExecutor`], which
//! serializes every thread at its yield points and hands control to
//! exactly one task at a time — so the interleaving is decided by data,
//! not by the OS scheduler, and every run is reproducible.
//!
//! On top of the stepper, the [`Explorer`] enumerates interleavings of a
//! [`Scenario`]: exhaustively (depth-first with backtracking) up to a
//! bounded number of scheduling decisions, seeded-random beyond the
//! bound. Every schedule is replayed from the same snapshot and checked
//! against the sequential oracle:
//!
//! * byte-identity of all summaries and auxiliary views,
//! * byte-identity of the change log, with per-table LSN monotonicity
//!   asserted directly on the trace,
//! * dead-letter determinism (rejected batches land identically on
//!   every interleaving),
//! * the `MD06x` static ordering pass from `md-check` over the recorded
//!   trace.
//!
//! The [`chaos`] module is the explorer's complement: instead of
//! enumerating interleavings of one fixed workload, it generates seeded
//! **fault storms** — transient I/O errors, engine-scoped mid-prepare
//! panics and crashes — and drives the warehouse's quarantine, repair
//! and retry machinery under them, checking audits, drain and
//! byte-identity with a sequential run of the identical storm.
//!
//! ```
//! use md_race::{retail_scenario, Explorer, RaceConfig};
//!
//! let scenario = retail_scenario(1, 4, 42);
//! let cfg = RaceConfig { bound: 4, random_schedules: 4, ..RaceConfig::default() };
//! let report = Explorer::new(&scenario, cfg).run();
//! println!("{}", report.summary());
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod explore;
pub mod scenario;
pub mod step;

pub use chaos::{run_chaos, silence_injected_panics, ChaosConfig, ChaosReport};
pub use explore::{ExploreReport, Explorer, RaceConfig, Violation};
pub use scenario::{
    retail_fault_scenario, retail_panic_scenario, retail_scenario, retail_transient_wal_scenario,
    PlannedFault, Scenario, SnapshotScenario, RETAIL_RACE_VIEW_COUNT,
};
pub use step::{Decision, RunRecord, StepExecutor};

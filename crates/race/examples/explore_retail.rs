//! Explore the retail batch workload at a few bounds and print coverage.
//!
//! ```sh
//! cargo run --release -p md-race --example explore_retail
//! ```

use md_race::{retail_scenario, Explorer, RaceConfig};
use std::time::Instant;

fn main() {
    for (batches, changes, bound) in [(1usize, 6usize, 12usize), (2, 6, 11)] {
        let scenario = retail_scenario(batches, changes, 7);
        let cfg = RaceConfig {
            bound,
            max_schedules: 20_000,
            random_schedules: 8,
            ..RaceConfig::default()
        };
        let t = Instant::now();
        let report = Explorer::new(&scenario, cfg).run();
        println!("{} in {:?}", report.summary(), t.elapsed());
        println!(
            "  batches={batches} changes={changes}: max_decisions={} events={}",
            report.max_decisions, report.events
        );
    }
}
